//! Last-good-spectrum fallback for streaming degradation.
//!
//! When a tag vanishes for a window (occlusion burst, antenna fault,
//! slot starvation), its pseudospectrum region collapses to zeros and
//! the classifier sees a cliff. [`SpectrumFallback`] softens the cliff:
//! it remembers the last frame region each tag produced with non-zero
//! coverage and, while the tag stays dark, patches the hole with an
//! exponentially decayed copy of that memory — "the tag is probably
//! still roughly where it was, trust that belief less every window".
//! After `max_age` dark windows the memory is dropped and the region
//! stays zero (honest ignorance beats stale confidence).
//!
//! The fallback is deliberately *not* part of [`FrameBuilder`]: frame
//! construction stays pure (the PR-1 thread-invariance contract), and
//! the stateful patching lives in the sequential streaming layer.

use crate::frames::{FrameLayout, FrameQuality};

/// Per-tag last-good frame-region memory with exponential decay.
#[derive(Debug, Clone)]
pub struct SpectrumFallback {
    layout: FrameLayout,
    /// Multiplier applied per dark window (in `(0, 1]`).
    decay: f32,
    /// Dark windows after which a memory is forgotten.
    max_age: u32,
    /// Last-good `(spectrum block, direct block)` per tag.
    last: Vec<Option<(Vec<f32>, Vec<f32>)>>,
    /// Consecutive dark windows per tag.
    age: Vec<u32>,
}

impl SpectrumFallback {
    /// Creates a fallback with the default decay (0.7 per window, 4
    /// windows of memory).
    pub fn new(layout: FrameLayout) -> Self {
        Self::with_decay(layout, 0.7, 4)
    }

    /// Creates a fallback with a custom decay schedule.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < decay <= 1.0`.
    pub fn with_decay(layout: FrameLayout, decay: f32, max_age: u32) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        SpectrumFallback {
            layout,
            decay,
            max_age,
            last: vec![None; layout.n_tags],
            age: vec![0; layout.n_tags],
        }
    }

    /// Slice bounds of tag `t`'s spectrum and direct blocks in a frame.
    fn regions(&self, t: usize) -> ((usize, usize), (usize, usize)) {
        let lay = self.layout;
        let spec_per_tag = lay.spectrum_dim() / lay.n_tags.max(1);
        let direct_per_tag = lay.direct_dim() / lay.n_tags.max(1);
        let spec = (t * spec_per_tag, (t + 1) * spec_per_tag);
        let base = lay.spectrum_dim();
        let direct = (base + t * direct_per_tag, base + (t + 1) * direct_per_tag);
        (spec, direct)
    }

    /// Records covered tags' regions and patches uncovered ones with
    /// the decayed last-good memory. Returns how many tags were
    /// patched.
    ///
    /// A tag is patched only when its coverage is zero *and* its frame
    /// region is currently all-zero, so a partially-observed tag's real
    /// (if sparse) features are never overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `frame`/`quality` do not match the layout.
    pub fn observe_and_patch(&mut self, frame: &mut [f32], quality: &FrameQuality) -> usize {
        assert_eq!(
            frame.len(),
            self.layout.frame_dim(),
            "frame/layout mismatch"
        );
        assert_eq!(
            quality.tag_coverage.len(),
            self.layout.n_tags,
            "quality/layout mismatch"
        );
        let mut patched = 0;
        for t in 0..self.layout.n_tags {
            let ((s0, s1), (d0, d1)) = self.regions(t);
            if quality.tag_coverage[t] > 0.0 {
                self.last[t] = Some((frame[s0..s1].to_vec(), frame[d0..d1].to_vec()));
                self.age[t] = 0;
                continue;
            }
            self.age[t] = self.age[t].saturating_add(1);
            if self.age[t] > self.max_age {
                self.last[t] = None;
                continue;
            }
            let Some((spec, direct)) = &self.last[t] else {
                continue;
            };
            let hole_is_empty =
                frame[s0..s1].iter().all(|&v| v == 0.0) && frame[d0..d1].iter().all(|&v| v == 0.0);
            if !hole_is_empty {
                continue;
            }
            let w = self.decay.powi(self.age[t] as i32);
            for (dst, src) in frame[s0..s1].iter_mut().zip(spec) {
                *dst = src * w;
            }
            for (dst, src) in frame[d0..d1].iter_mut().zip(direct) {
                *dst = src * w;
            }
            patched += 1;
        }
        patched
    }

    /// Forgets all memories (e.g. after a stream gap long enough that
    /// the scene may have changed entirely).
    pub fn reset(&mut self) {
        self.last.iter_mut().for_each(|m| *m = None);
        self.age.iter_mut().for_each(|a| *a = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::FeatureMode;

    fn layout() -> FrameLayout {
        FrameLayout::new(2, 4, FeatureMode::Joint)
    }

    fn quality(c0: f32, c1: f32) -> FrameQuality {
        FrameQuality {
            tag_coverage: vec![c0, c1],
        }
    }

    /// A frame with distinctive non-zero content for tag `t`.
    fn frame_with_tag(t: usize) -> Vec<f32> {
        let lay = layout();
        let mut f = vec![0.0f32; lay.frame_dim()];
        let spec_per_tag = lay.spectrum_dim() / 2;
        for v in f[t * spec_per_tag..(t + 1) * spec_per_tag].iter_mut() {
            *v = 0.5;
        }
        let base = lay.spectrum_dim();
        let direct_per_tag = lay.direct_dim() / 2;
        for v in f[base + t * direct_per_tag..base + (t + 1) * direct_per_tag].iter_mut() {
            *v = 0.8;
        }
        f
    }

    #[test]
    fn patches_dark_tag_with_decay() {
        let mut fb = SpectrumFallback::with_decay(layout(), 0.5, 3);
        // Window 1: tag 0 visible.
        let mut f1 = frame_with_tag(0);
        assert_eq!(fb.observe_and_patch(&mut f1, &quality(1.0, 0.0)), 0);
        // Window 2: tag 0 dark → patched at 0.5×.
        let mut f2 = vec![0.0f32; layout().frame_dim()];
        assert_eq!(fb.observe_and_patch(&mut f2, &quality(0.0, 0.0)), 1);
        assert!((f2[0] - 0.25).abs() < 1e-6, "0.5 value × 0.5 decay");
        // Window 3: still dark → 0.25×.
        let mut f3 = vec![0.0f32; layout().frame_dim()];
        fb.observe_and_patch(&mut f3, &quality(0.0, 0.0));
        assert!((f3[0] - 0.125).abs() < 1e-6);
    }

    #[test]
    fn forgets_after_max_age() {
        let mut fb = SpectrumFallback::with_decay(layout(), 0.9, 2);
        let mut f = frame_with_tag(0);
        fb.observe_and_patch(&mut f, &quality(1.0, 0.0));
        for _ in 0..2 {
            let mut dark = vec![0.0f32; layout().frame_dim()];
            fb.observe_and_patch(&mut dark, &quality(0.0, 0.0));
        }
        // Third dark window exceeds max_age: nothing patched.
        let mut dark = vec![0.0f32; layout().frame_dim()];
        assert_eq!(fb.observe_and_patch(&mut dark, &quality(0.0, 0.0)), 0);
        assert!(dark.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn never_overwrites_real_features() {
        let mut fb = SpectrumFallback::new(layout());
        let mut f = frame_with_tag(0);
        fb.observe_and_patch(&mut f, &quality(1.0, 0.0));
        // Tag 0 reported zero coverage but its region is non-zero
        // (shouldn't happen, but belt and braces): leave it alone.
        let mut odd = frame_with_tag(0);
        odd[0] = 0.123;
        fb.observe_and_patch(&mut odd, &quality(0.0, 0.0));
        assert_eq!(odd[0], 0.123);
    }

    #[test]
    fn recovery_resets_age_and_memory() {
        let mut fb = SpectrumFallback::with_decay(layout(), 0.5, 4);
        let mut f = frame_with_tag(0);
        fb.observe_and_patch(&mut f, &quality(1.0, 0.0));
        let mut dark = vec![0.0f32; layout().frame_dim()];
        fb.observe_and_patch(&mut dark, &quality(0.0, 0.0));
        // Tag reappears with fresh (different) content.
        let mut back = frame_with_tag(0);
        for v in back.iter_mut() {
            *v *= 0.6;
        }
        fb.observe_and_patch(&mut back, &quality(1.0, 0.0));
        // Next dark window patches from the *new* memory at age 1.
        let mut dark2 = vec![0.0f32; layout().frame_dim()];
        fb.observe_and_patch(&mut dark2, &quality(0.0, 0.0));
        assert!((dark2[0] - 0.5 * 0.6 * 0.5).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_memory() {
        let mut fb = SpectrumFallback::new(layout());
        let mut f = frame_with_tag(1);
        fb.observe_and_patch(&mut f, &quality(0.0, 1.0));
        fb.reset();
        let mut dark = vec![0.0f32; layout().frame_dim()];
        assert_eq!(fb.observe_and_patch(&mut dark, &quality(0.0, 0.0)), 0);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn rejects_bad_decay() {
        SpectrumFallback::with_decay(layout(), 0.0, 2);
    }
}
