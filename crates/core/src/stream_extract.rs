//! Streaming incremental feature extraction for the raw-ingest serve
//! path.
//!
//! [`crate::frames::FrameBuilder`] rebuilds everything from scratch for
//! every window: it rescans the whole reading buffer per (window, tag),
//! regroups rounds, recomputes the smoothed covariance, and runs the
//! per-angle pseudospectrum projection loop. A [`StreamExtractor`]
//! instead maintains per-tag state *across* windows:
//!
//! * readings are folded into per-round antenna slots once, at ingest
//!   ([`StreamExtractor::ingest`]) — no per-window rescans;
//! * the spatially smoothed covariance is maintained by rank-1
//!   add/retire updates ([`m2ai_dsp::stream::SlidingCovariance`]) as
//!   rounds enter and leave the window, preserving the
//!   forward–backward form (FB is applied downstream, to the streamed
//!   correlation, by the same prefix the batch path uses);
//! * per-antenna periodogram power is accumulated incrementally
//!   alongside (`Σ|x|²` per antenna over folded rounds);
//! * the 180-bin grid scan runs GEMM-lowered on `m2ai-kernels`
//!   ([`m2ai_dsp::music::pseudospectrum_from_correlation_gemm`]);
//! * tags fan out over `m2ai-par` under the builder's existing thread
//!   budget, with all mutation done serially *before* the fan-out so
//!   the parallel stage is read-only.
//!
//! ## Equivalence contract (property-tested)
//!
//! Incremental windows agree with the batch `FrameBuilder` within a
//! documented tolerance band: the `f64` covariance accumulator drifts
//! by rounding that add/retire does not cancel, and the `f32` GEMM scan
//! rounds the steering/noise operands. Every `refresh_every`-th window
//! (and always window 0) is a **refresh point**: the live rounds are
//! re-folded from scratch and features are computed by the *batch* code
//! path on the materialised snapshots — bitwise identical to
//! `FrameBuilder` on the same snapshot set, and zeroing accumulated
//! drift. `refresh_every = 1` therefore makes every window bitwise.
//!
//! ## Alignment contract
//!
//! Round membership is decided by round *index* `⌊t/round_duration⌋`,
//! so the frame duration must be an (approximate) integer multiple of
//! the round duration and window starts must land on round boundaries
//! (true for the paper timing: rounds of `n_antennas × 25 ms`, frames
//! of 0.4–0.5 s). [`StreamExtractor::try_new`] refuses misaligned
//! configurations, and callers fall back to the batch builder.
//! Readings within a float ulp of a window boundary can land on the
//! other side of the batch path's `[t0, t0 + frame)` time filter than
//! their round index suggests; the sync pass re-applies that exact
//! filter to the edge rounds' candidate slots, so membership matches
//! the batch builder bit for bit. Window starts passed to
//! [`StreamExtractor::extract`] must be non-decreasing (rounds behind
//! the newest window are retired and late readings for them dropped).

use crate::calibration::PhaseCalibrator;
use crate::frames::{
    periodogram_feature, spectrum_feature_into, FeatureMode, FrameBuilder, FrameQuality,
};
use m2ai_dsp::music::{pseudospectrum, pseudospectrum_power_gemm_into, MusicConfig};
use m2ai_dsp::stream::SlidingCovariance;
use m2ai_dsp::{CMatrix, Complex};
use m2ai_par::parallel_map;
use m2ai_rfsim::reading::TagReading;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Incremental covariance snapshot updates (`op = add | retire`).
static UPDATES: m2ai_obs::CounterFamily = m2ai_obs::CounterFamily::new(
    "m2ai_extract_stream_updates_total",
    "incremental sliding-window covariance snapshot updates by operation",
    "op",
);

/// Exact-recompute refresh windows.
fn refreshes() -> m2ai_obs::Counter {
    static C: OnceLock<m2ai_obs::Counter> = OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_extract_stream_refreshes_total",
            "exact-recompute refresh windows of the streaming extractor",
            &[],
        )
    })
    .clone()
}

/// Per-thread reusable buffers for the incremental scan: the streamed
/// correlation matrix and the linear-power spectrum. Thread-local
/// because phase 2 of [`StreamExtractor::extract`] may run tags on a
/// thread pool.
struct ScanBuffers {
    r: CMatrix,
    power: Vec<f64>,
    compressed: Vec<f32>,
}

thread_local! {
    static SCAN_BUFFERS: std::cell::RefCell<ScanBuffers> =
        std::cell::RefCell::new(ScanBuffers {
            r: CMatrix::zeros(0, 0),
            power: Vec::new(),
            compressed: Vec::new(),
        });
}

/// `log10` for arguments in `(0, ∞)` via exponent split plus an
/// `atanh`-form series on the mantissa, absolute error below `1e-8` —
/// much cheaper than libm's correctly-rounded `log10`, and written
/// branch-free (bit twiddling, a comparison-mask select, one division,
/// a short Horner chain) so the compiler can auto-vectorise the
/// per-bin compression loop it sits in.
///
/// Only the *incremental* spectrum path uses this: its outputs carry a
/// documented ±1e-3 equivalence band versus the batch features, and an
/// `O(1e-8)` log error perturbs the final feature by `O(1e-9)` — noise
/// next to the covariance add/retire drift the band already absorbs.
/// Refresh windows and the batch builder keep libm `log10` bit-exactly.
#[inline(always)]
fn fast_log10(x: f64) -> f64 {
    let bits = x.to_bits();
    let e_raw = (((bits >> 52) & 0x7ff) as i64 - 1023) as f64;
    let m_raw = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    // Branchless range reduction to m ∈ [√2/2, √2): halve (exactly) and
    // bump the exponent when the mantissa lands above √2.
    let over = f64::from(u8::from(m_raw > std::f64::consts::SQRT_2));
    let m = m_raw * (1.0 - 0.5 * over);
    let e = e_raw + over;
    // ln(m) = 2·atanh(t), t = (m−1)/(m+1); |t| ≤ 0.172 so the series
    // truncated at t⁹ is exact to ~2e-9.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let p = 1.0 + t2 * (1.0 / 3.0 + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0))));
    let ln_m = 2.0 * t * p;
    (e * std::f64::consts::LN_2 + ln_m) * std::f64::consts::LOG10_E
}

/// Band-tolerant sibling of [`spectrum_feature_into`]: identical
/// normalise → log-compress → smooth pipeline, but with [`fast_log10`]
/// in the compression and a reused scratch buffer. Incremental windows
/// only; refresh windows go through the exact version.
fn spectrum_feature_into_approx(power: &[f64], compressed: &mut Vec<f32>, out: &mut [f32]) {
    let max = power.iter().cloned().fold(f64::MIN, f64::max);
    let scale = if max > 0.0 { 1.0 / max } else { 0.0 };
    compressed.clear();
    compressed.resize(power.len(), 0.0);
    for (c, &p) in compressed.iter_mut().zip(power) {
        *c = ((fast_log10((p * scale).max(1e-3)) / 3.0) + 1.0) as f32;
    }
    crate::frames::smooth_spectrum_into(compressed, out);
}

/// Wall time of one GEMM-lowered pseudospectrum scan.
fn scan_seconds() -> m2ai_obs::Histogram {
    static H: OnceLock<m2ai_obs::Histogram> = OnceLock::new();
    H.get_or_init(|| {
        m2ai_obs::histogram(
            "m2ai_extract_stream_scan_seconds",
            "GEMM-lowered pseudospectrum scan wall time",
            &[],
            &m2ai_obs::latency_buckets(),
        )
    })
    .clone()
}

/// Configuration of the streaming extraction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingExtract {
    /// Exact-recompute cadence: every `refresh_every`-th window (and
    /// always the first) is rebuilt from scratch through the batch code
    /// path, bounding incremental drift. `1` (or `0`, treated as `1`)
    /// makes every window exact.
    pub refresh_every: u32,
}

impl Default for StreamingExtract {
    fn default() -> Self {
        StreamingExtract { refresh_every: 8 }
    }
}

/// Per-round ingest state for one tag: the candidate readings per
/// antenna slot, plus what (if anything) is currently folded into the
/// accumulators.
#[derive(Debug, Clone)]
struct RoundState {
    /// Candidates per antenna, sorted ascending by `(time_s, channel)`:
    /// `(time_s, channel, calibrated snapshot value)`. The batch path
    /// filters readings to `[t0, t0 + frame)` *before* last-wins slot
    /// overwriting, so which candidate wins depends on the window — a
    /// reading within a float ulp of the window end can be excluded even
    /// though its round index is inside the window. Keeping every
    /// distinct `(time, channel)` candidate (duplicates drop, keep
    /// first) lets [`RoundState::winners`] reproduce the batch choice
    /// exactly for any window. Slots hold one entry outside fault
    /// injection, so the lists stay tiny.
    slots: Vec<Vec<(f64, usize, Complex)>>,
    /// The snapshot currently folded into the accumulators, if any.
    folded: Option<Vec<Complex>>,
    /// Set when a slot changed since the last fold sync.
    dirty: bool,
}

impl RoundState {
    fn new(n_antennas: usize) -> Self {
        RoundState {
            slots: vec![Vec::new(); n_antennas],
            folded: None,
            dirty: true,
        }
    }

    /// The round's array snapshot under the window's time filter: per
    /// antenna, the last candidate with `time_s < t1` (the maximal
    /// `(time, channel)` key the batch overwrite loop would keep), or
    /// `None` if any antenna has no such candidate — the batch path's
    /// completeness rule. Candidates below the window start are pruned
    /// by the sync pass before this runs.
    fn winners(&self, t1: f64) -> Option<Vec<Complex>> {
        self.slots
            .iter()
            .map(|s| s.iter().rev().find(|e| e.0 < t1).map(|e| e.2))
            .collect()
    }

    /// Whether some candidate sits at or past the window end `t1` — its
    /// exclusion is temporary (the next window's `t1` is larger), so the
    /// fold must be recomputed next sync.
    fn right_excluded(&self, t1: f64) -> bool {
        self.slots
            .iter()
            .any(|s| s.last().is_some_and(|e| e.0 >= t1))
    }
}

/// All streaming state for one tag.
#[derive(Debug, Clone)]
struct TagState {
    rounds: BTreeMap<i64, RoundState>,
    cov: SlidingCovariance,
    /// `Σ|x_a|²` over folded rounds, per antenna.
    power: Vec<f64>,
    folded_rounds: usize,
}

/// Streaming per-tag feature extraction state over a sliding window.
///
/// Construction ([`StreamExtractor::try_new`]) clones the builder, so
/// the extractor is self-contained; `Clone` carries it through session
/// checkpoints.
#[derive(Debug, Clone)]
pub struct StreamExtractor {
    builder: FrameBuilder,
    music_cfg: MusicConfig,
    cfg: StreamingExtract,
    rounds_per_frame: i64,
    tags: Vec<TagState>,
    windows_emitted: u64,
    /// Rounds below this index were retired; late readings for them are
    /// dropped (the window has moved past).
    floor_round: i64,
}

impl StreamExtractor {
    /// Builds streaming state for `builder`'s geometry, or `None` when
    /// the configuration cannot be streamed — unsupported feature mode
    /// (`PhaseOnly` / `RssiOnly` have no covariance/power form) or a
    /// frame duration that is not an integer multiple of the round
    /// duration. Callers fall back to the batch builder on `None`.
    pub fn try_new(builder: &FrameBuilder, cfg: StreamingExtract) -> Option<Self> {
        let lay = builder.layout;
        if !matches!(
            lay.mode,
            FeatureMode::Joint | FeatureMode::MusicOnly | FeatureMode::PeriodogramOnly
        ) {
            return None;
        }
        let rd = builder.round_duration_s;
        if !rd.is_finite() || rd <= 0.0 || !builder.frame_duration_s.is_finite() {
            return None;
        }
        let rpf = (builder.frame_duration_s / rd).round();
        if rpf < 1.0 || (builder.frame_duration_s - rpf * rd).abs() > 1e-9 * rd.max(1.0) {
            return None;
        }
        let music_cfg = builder.music_config();
        let cov = SlidingCovariance::new(lay.n_antennas, music_cfg.smoothing_subarray).ok()?;
        let tags = (0..lay.n_tags)
            .map(|_| TagState {
                rounds: BTreeMap::new(),
                cov: cov.clone(),
                power: vec![0.0; lay.n_antennas],
                folded_rounds: 0,
            })
            .collect();
        Some(StreamExtractor {
            builder: builder.clone(),
            music_cfg,
            cfg: StreamingExtract {
                refresh_every: cfg.refresh_every.max(1),
            },
            rounds_per_frame: rpf as i64,
            tags,
            windows_emitted: 0,
            floor_round: i64::MIN,
        })
    }

    /// The calibrator in use (shared with the owning builder's clone).
    pub fn calibrator(&self) -> &PhaseCalibrator {
        &self.builder.calibrator
    }

    /// Number of windows emitted so far.
    pub fn windows_emitted(&self) -> u64 {
        self.windows_emitted
    }

    /// Whether the next [`Self::extract`] call will be a refresh
    /// (exact-recompute) window.
    pub fn next_is_refresh(&self) -> bool {
        self.windows_emitted
            .is_multiple_of(self.cfg.refresh_every as u64)
    }

    /// Folds one reading into its round slot — O(1), no window scan.
    ///
    /// Applies the same filters as the batch snapshot gatherer:
    /// non-finite time/phase/RSSI and out-of-range antennas or tags are
    /// dropped. Readings for already-retired rounds are dropped too.
    pub fn ingest(&mut self, r: &TagReading) {
        let lay = self.builder.layout;
        if !r.time_s.is_finite() || !r.phase_rad.is_finite() || !r.rssi_dbm.is_finite() {
            return;
        }
        if r.antenna >= lay.n_antennas || r.tag.0 >= lay.n_tags {
            return;
        }
        let round = (r.time_s / self.builder.round_duration_s).floor() as i64;
        if round < self.floor_round {
            return;
        }
        let phase = self.builder.calibrator.calibrate(r);
        let amp = 10f64.powf(r.rssi_dbm / 20.0);
        let z = Complex::from_polar(amp, 2.0 * phase);
        let n_ant = lay.n_antennas;
        let state = &mut self.tags[r.tag.0];
        let rs = state
            .rounds
            .entry(round)
            .or_insert_with(|| RoundState::new(n_ant));
        let slot = &mut rs.slots[r.antenna];
        // Sorted insert by (time, channel); on an equal key the
        // incumbent stays, matching the session buffer's duplicate-drop
        // (keep-first) semantics. Timestamps are finite here, so the
        // partial order is total.
        match slot.binary_search_by(|e| {
            (e.0, e.1)
                .partial_cmp(&(r.time_s, r.channel))
                .expect("finite times order totally")
        }) {
            Ok(_) => {}
            Err(pos) => {
                slot.insert(pos, (r.time_s, r.channel, z));
                rs.dirty = true;
            }
        }
    }

    /// Emits the frame for the window `[t0, t0 + frame_duration)`.
    ///
    /// Phase 1 (serial): retire rounds that slid out, re-fold dirty
    /// rounds inside the window. Phase 2 (parallel over tags,
    /// read-only): eigendecomposition + GEMM grid scan — or, on refresh
    /// windows, the exact batch feature path over materialised
    /// snapshots.
    pub fn extract(&mut self, t0: f64) -> (Vec<f32>, FrameQuality) {
        // Same stage family as the batch builder, so streaming windows
        // show up next to calibration/music/periodogram in dashboards.
        let _span = crate::frames::stage_seconds("stream_window").time();
        // Child of the pushing frame's trace (ambient; no-op when
        // unsampled) — separates the incremental scan from the rest of
        // the window close in a span tree.
        let _trace_span = m2ai_obs::trace::span("stream_extract");
        let rd = self.builder.round_duration_s;
        let k0 = (t0 / rd).round() as i64;
        let k1 = k0 + self.rounds_per_frame;
        // The same float sum the batch snapshot gatherer computes, so
        // the edge-of-window time filter compares identically.
        let t1 = t0 + self.builder.frame_duration_s;
        let refresh = self.next_is_refresh();
        self.windows_emitted += 1;

        let (mut adds, mut retires) = (0u64, 0u64);
        for state in &mut self.tags {
            sync_tag(state, k0, k1, t0, t1, refresh, &mut adds, &mut retires);
        }
        self.floor_round = self.floor_round.max(k0);
        if adds > 0 {
            UPDATES.with("add").add(adds);
        }
        if retires > 0 {
            UPDATES.with("retire").add(retires);
        }
        if refresh {
            refreshes().inc();
        }

        let tags = &self.tags;
        let builder = &self.builder;
        let music_cfg = &self.music_cfg;
        let lay = builder.layout;
        let parts = parallel_map(lay.n_tags, builder.parallelism, |tag| {
            let state = &tags[tag];
            if refresh {
                exact_tag_features(state, builder, music_cfg, k0, k1)
            } else {
                incremental_tag_features(state, builder, music_cfg)
            }
        });

        // Frame assembly — identical to the batch builder's.
        let mut frame = Vec::with_capacity(lay.frame_dim());
        for (spec_part, _, _) in &parts {
            frame.extend_from_slice(spec_part);
        }
        for (_, direct_part, _) in &parts {
            frame.extend_from_slice(direct_part);
        }
        for v in &mut frame {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        let expected_rounds = (builder.frame_duration_s / builder.round_duration_s)
            .round()
            .max(1.0);
        let tag_coverage = parts
            .iter()
            .map(|(_, _, n_snaps)| ((*n_snaps as f64 / expected_rounds) as f32).clamp(0.0, 1.0))
            .collect();
        (frame, FrameQuality { tag_coverage })
    }
}

/// Phase-1 accumulator sync for one tag (serial; the only place that
/// mutates covariance/power state).
///
/// `t0`/`t1` are the window's exact time bounds (`t1 = t0 + frame`, the
/// same float sum the batch gatherer computes): candidates at the very
/// edge of the window can fall on the other side of the time filter
/// than their round index suggests, and the fold must follow the filter
/// to stay bit-compatible with the batch path.
#[allow(clippy::too_many_arguments)]
fn sync_tag(
    state: &mut TagState,
    k0: i64,
    k1: i64,
    t0: f64,
    t1: f64,
    refresh: bool,
    adds: &mut u64,
    retires: &mut u64,
) {
    let TagState {
        rounds,
        cov,
        power,
        folded_rounds,
    } = state;
    // Rounds that slid out of the window: retire and drop.
    while let Some((&idx, _)) = rounds.iter().next() {
        if idx >= k0 {
            break;
        }
        let rs = rounds.remove(&idx).expect("first key exists");
        if let Some(snap) = rs.folded {
            unfold(cov, power, folded_rounds, &snap);
            *retires += 1;
        }
    }
    // Left edge: candidates of round `k0` below the window start are
    // gone for good (starts are non-decreasing) — prune them, and refold
    // if one of them was folded in.
    if let Some(rs) = rounds.get_mut(&k0) {
        for slot in &mut rs.slots {
            let cut = slot.partition_point(|e| e.0 < t0);
            if cut > 0 {
                slot.drain(..cut);
                rs.dirty = true;
            }
        }
    }
    if refresh {
        // Exact rebuild: zero the accumulators and re-fold every
        // complete round in the window from its slots — resets drift.
        cov.clear();
        power.iter_mut().for_each(|p| *p = 0.0);
        *folded_rounds = 0;
        for (_, rs) in rounds.range_mut(k0..k1) {
            rs.folded = rs.winners(t1);
            if let Some(snap) = &rs.folded {
                fold(cov, power, folded_rounds, snap);
            }
            // A candidate past `t1` enters the filter next window, so
            // the fold must be redone then.
            rs.dirty = rs.right_excluded(t1);
        }
    } else {
        for (_, rs) in rounds.range_mut(k0..k1) {
            if !rs.dirty {
                continue;
            }
            if let Some(old) = rs.folded.take() {
                unfold(cov, power, folded_rounds, &old);
                *retires += 1;
            }
            rs.folded = rs.winners(t1);
            if let Some(snap) = &rs.folded {
                fold(cov, power, folded_rounds, snap);
                *adds += 1;
            }
            rs.dirty = rs.right_excluded(t1);
        }
    }
}

fn fold(
    cov: &mut SlidingCovariance,
    power: &mut [f64],
    folded_rounds: &mut usize,
    snap: &[Complex],
) {
    cov.add(snap).expect("snapshot length fixed by layout");
    for (p, z) in power.iter_mut().zip(snap) {
        *p += z.norm_sqr();
    }
    *folded_rounds += 1;
}

fn unfold(
    cov: &mut SlidingCovariance,
    power: &mut [f64],
    folded_rounds: &mut usize,
    snap: &[Complex],
) {
    cov.retire(snap).expect("retire of a folded snapshot");
    for (p, z) in power.iter_mut().zip(snap) {
        *p -= z.norm_sqr();
    }
    *folded_rounds -= 1;
}

/// Incremental (non-refresh) per-tag features: streamed correlation →
/// GEMM-lowered scan; periodogram from the running power sums.
fn incremental_tag_features(
    state: &TagState,
    builder: &FrameBuilder,
    music_cfg: &MusicConfig,
) -> (Vec<f32>, Vec<f32>, usize) {
    let lay = builder.layout;
    let has_spectrum = matches!(lay.mode, FeatureMode::Joint | FeatureMode::MusicOnly);
    let mut spec_part = vec![0.0f32; if has_spectrum { lay.n_angles } else { 0 }];
    let direct_per_tag = lay.direct_dim() / lay.n_tags.max(1);
    let mut direct_part = vec![0.0f32; direct_per_tag];
    let n_snaps = state.folded_rounds;

    if has_spectrum && n_snaps >= 2 {
        // Correlation and power buffers are reused across windows
        // (thread-local: phase 2 may fan out over a thread pool) — the
        // scan itself draws its GEMM operands from the kernel scratch,
        // so the whole incremental path is allocation-free in steady
        // state.
        SCAN_BUFFERS.with(|bufs| {
            let bufs = &mut *bufs.borrow_mut();
            if state.cov.correlation_into(&mut bufs.r).is_ok() {
                let ok = m2ai_kernels::with_thread_scratch(|scratch| {
                    let _span = scan_seconds().time();
                    pseudospectrum_power_gemm_into(
                        &bufs.r,
                        n_snaps,
                        music_cfg,
                        scratch,
                        &mut bufs.power,
                    )
                });
                if ok.is_ok() {
                    spectrum_feature_into_approx(&bufs.power, &mut bufs.compressed, &mut spec_part);
                }
            }
        });
    }
    if matches!(lay.mode, FeatureMode::Joint | FeatureMode::PeriodogramOnly) && n_snaps > 0 {
        for (d, &sum) in direct_part.iter_mut().zip(&state.power) {
            // Mean power over folded rounds: the running Σ|x|² divided
            // by the count — `mean_power` of the batch series, modulo
            // add/retire rounding (inside the equivalence band).
            *d = periodogram_feature(sum / n_snaps as f64);
        }
    }
    (spec_part, direct_part, n_snaps)
}

/// Refresh-window per-tag features: materialise the window's complete
/// snapshots (ascending round order, like the batch gatherer) and run
/// the exact batch feature arithmetic on them — bitwise identical to
/// `FrameBuilder::tag_features` on the same snapshot set.
fn exact_tag_features(
    state: &TagState,
    builder: &FrameBuilder,
    music_cfg: &MusicConfig,
    k0: i64,
    k1: i64,
) -> (Vec<f32>, Vec<f32>, usize) {
    let lay = builder.layout;
    let has_spectrum = matches!(lay.mode, FeatureMode::Joint | FeatureMode::MusicOnly);
    let mut spec_part = vec![0.0f32; if has_spectrum { lay.n_angles } else { 0 }];
    let direct_per_tag = lay.direct_dim() / lay.n_tags.max(1);
    let mut direct_part = vec![0.0f32; direct_per_tag];

    // After a refresh sync, `folded` is exactly the complete snapshot
    // of every round in the window.
    let snaps: Vec<Vec<Complex>> = state
        .rounds
        .range(k0..k1)
        .filter_map(|(_, rs)| rs.folded.clone())
        .collect();
    if has_spectrum && snaps.len() >= 2 {
        if let Ok(spec) = pseudospectrum(&snaps, music_cfg) {
            spectrum_feature_into(&spec.power, &mut spec_part);
        }
    }
    if matches!(lay.mode, FeatureMode::Joint | FeatureMode::PeriodogramOnly) {
        for a in 0..lay.n_antennas {
            let series: Vec<Complex> = snaps.iter().map(|s| s[a]).collect();
            if series.is_empty() {
                continue;
            }
            let p = m2ai_dsp::periodogram::mean_power(&series);
            direct_part[a] = periodogram_feature(p);
        }
    }
    let n_snaps = snaps.len();
    (spec_part, direct_part, n_snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::FrameLayout;
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    fn readings(n_tags: usize, seconds: f64) -> Vec<TagReading> {
        let cfg = ReaderConfig {
            hopping_offsets: false,
            phase_noise_std: 0.01,
            rssi_noise_db: 0.1,
            pi_ambiguity: true,
            ..ReaderConfig::default()
        };
        let mut reader = Reader::new(Room::rectangular("anechoic", 10.0, 8.0, 60.0), cfg, n_tags);
        let tags: Vec<Point2> = (0..n_tags)
            .map(|i| Point2::new(3.0 + i as f64 * 0.8, 3.0 + (i % 3) as f64 * 0.7))
            .collect();
        let scene = SceneSnapshot::with_tags(tags);
        reader.run(|_| scene.clone(), seconds)
    }

    fn builder(n_tags: usize, mode: FeatureMode, frame_s: f64) -> FrameBuilder {
        let layout = FrameLayout::new(n_tags, 4, mode);
        FrameBuilder::new(layout, PhaseCalibrator::disabled(n_tags, 4), frame_s)
    }

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn unsupported_configurations_refuse_streaming() {
        for mode in [FeatureMode::PhaseOnly, FeatureMode::RssiOnly] {
            let fb = builder(2, mode, 0.4);
            assert!(StreamExtractor::try_new(&fb, StreamingExtract::default()).is_none());
        }
        // Frame not an integer multiple of the 0.1 s round.
        let fb = builder(2, FeatureMode::Joint, 0.45);
        assert!(StreamExtractor::try_new(&fb, StreamingExtract::default()).is_none());
        let fb = builder(2, FeatureMode::Joint, 0.4);
        assert!(StreamExtractor::try_new(&fb, StreamingExtract::default()).is_some());
    }

    #[test]
    fn refresh_every_window_is_bitwise_batch() {
        let all = readings(2, 2.0);
        for mode in [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
        ] {
            let fb = builder(2, mode, 0.4);
            let mut ex =
                StreamExtractor::try_new(&fb, StreamingExtract { refresh_every: 1 }).unwrap();
            for r in &all {
                ex.ingest(r);
            }
            for w in 0..4 {
                let t0 = w as f64 * 0.4;
                let (stream_frame, stream_q) = ex.extract(t0);
                let (batch_frame, batch_q) = fb.build_frame_with_quality(&all, t0);
                assert_eq!(stream_frame, batch_frame, "{mode:?} window {w}");
                assert_eq!(stream_q, batch_q, "{mode:?} window {w}");
            }
        }
    }

    #[test]
    fn fast_log10_matches_libm_within_1e8() {
        // The compression input range after clamping is [1e-3, ~1], but
        // check well beyond it: any positive normal must be accurate.
        let mut worst = 0.0f64;
        let mut x = 1e-6;
        while x < 1e6 {
            worst = worst.max((fast_log10(x) - x.log10()).abs());
            x *= 1.000_37;
        }
        assert!(worst < 1e-8, "fast_log10 worst abs error {worst:e}");
    }

    #[test]
    fn incremental_windows_stay_in_band_on_overlapping_hops() {
        let all = readings(3, 2.0);
        let fb = builder(3, FeatureMode::Joint, 0.4);
        let mut ex = StreamExtractor::try_new(&fb, StreamingExtract { refresh_every: 8 }).unwrap();
        for r in &all {
            ex.ingest(r);
        }
        // Hop of one round (0.1 s): heavy window overlap.
        let mut worst = 0.0f32;
        for w in 0..16 {
            let t0 = w as f64 * 0.1;
            let was_refresh = ex.next_is_refresh();
            let (stream_frame, _) = ex.extract(t0);
            let (batch_frame, _) = fb.build_frame_with_quality(&all, t0);
            let d = max_abs_diff(&stream_frame, &batch_frame);
            if was_refresh {
                assert_eq!(
                    stream_frame, batch_frame,
                    "refresh window {w} must be exact"
                );
            } else {
                worst = worst.max(d);
            }
        }
        assert!(worst < 1e-3, "incremental drift {worst} out of band");
    }

    #[test]
    fn ingest_after_extract_updates_later_windows() {
        let all = readings(1, 1.5);
        let fb = builder(1, FeatureMode::Joint, 0.5);
        let mut ex = StreamExtractor::try_new(&fb, StreamingExtract { refresh_every: 1 }).unwrap();
        // Feed only the first window's readings, extract, then feed the
        // rest — the arrival-order pattern of the serve path.
        let (early, late): (Vec<_>, Vec<_>) = all.iter().partition(|r| r.time_s < 0.5);
        for r in &early {
            ex.ingest(r);
        }
        let (f0, _) = ex.extract(0.0);
        assert_eq!(f0, fb.build_frame(&all, 0.0), "window 0");
        for r in &late {
            ex.ingest(r);
        }
        let (f1, _) = ex.extract(0.5);
        assert_eq!(f1, fb.build_frame(&all, 0.5), "window 1");
        assert_eq!(ex.windows_emitted(), 2);
    }

    #[test]
    fn faulty_readings_are_filtered_like_batch() {
        let mut all = readings(2, 1.0);
        for (i, r) in all.iter_mut().enumerate() {
            match i % 5 {
                0 => r.phase_rad = f64::NAN,
                1 => r.rssi_dbm = f64::INFINITY,
                2 => r.antenna = 17,
                _ => {}
            }
        }
        let fb = builder(2, FeatureMode::Joint, 0.5);
        let mut ex = StreamExtractor::try_new(&fb, StreamingExtract { refresh_every: 1 }).unwrap();
        for r in &all {
            ex.ingest(r);
        }
        let (frame, q) = ex.extract(0.0);
        let (batch, bq) = fb.build_frame_with_quality(&all, 0.0);
        assert_eq!(frame, batch);
        assert_eq!(q, bq);
        assert!(frame.iter().all(|v| v.is_finite()));
    }
}
