//! Realtime (streaming) identification.
//!
//! The paper's deployment (Section V) streams LLRP reads to a backend
//! that identifies activities *in realtime*. [`OnlineIdentifier`]
//! packages that mode: push readings as they arrive, and it maintains a
//! sliding sequence of spectrum frames, emitting a prediction whenever
//! a fresh frame completes.
//!
//! ## Degradation contract
//!
//! Real streams lose reads. The identifier tracks a
//! [`HealthState`] per window:
//!
//! * **Healthy** — coverage is good; predictions flow normally.
//! * **Degraded** — the window was sparse (low per-tag coverage, a
//!   patched-in fallback spectrum, or no reads at all). Predictions
//!   still flow, flagged, and are gated on
//!   [`HealthConfig::min_confidence`].
//! * **Stale** — the stream has been silent past
//!   [`HealthConfig::stale_timeout_s`]: predictions are *suppressed*
//!   (emitting garbage from an empty room helps nobody) and the frame
//!   history plus fallback memory are cleared so a resuming stream
//!   starts from truth, not from the world before the gap.
//!
//! Recovery is hysteretic: after degradation, the identifier returns to
//! Healthy only after [`HealthConfig::recovery_windows`] consecutive
//! good windows. Out-of-order and duplicate readings are tolerated: the
//! window buffer keeps itself time-sorted and drops exact duplicates,
//! so retransmitted or interleaved LLRP reports cannot skew a frame.

use crate::degrade::SpectrumFallback;
use crate::frames::FrameBuilder;
use crate::stream_extract::{StreamExtractor, StreamingExtract};
use m2ai_kernels::KernelScratch;
use m2ai_nn::model::SequenceClassifier;
use m2ai_rfsim::reading::TagReading;
use std::collections::VecDeque;

/// Cap on the per-session transition log: long-lived sessions must not
/// grow unbounded just for observability.
const TRANSITION_LOG_CAP: usize = 1024;

/// Stable label for a health state, used in metric label sets.
fn health_label(h: HealthState) -> &'static str {
    match h {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degraded",
        HealthState::Stale => "stale",
    }
}

/// Global transition counter for the `from → to` edge, resolved once
/// per process (one counter per directed edge of the state machine).
fn transition_counter(from: HealthState, to: HealthState) -> m2ai_obs::Counter {
    static C: std::sync::OnceLock<Vec<((&'static str, &'static str), m2ai_obs::Counter)>> =
        std::sync::OnceLock::new();
    static EDGE_LABELS: [[(&str, &str); 2]; 6] = [
        [("from", "healthy"), ("to", "degraded")],
        [("from", "healthy"), ("to", "stale")],
        [("from", "degraded"), ("to", "healthy")],
        [("from", "degraded"), ("to", "stale")],
        [("from", "stale"), ("to", "healthy")],
        [("from", "stale"), ("to", "degraded")],
    ];
    let edges = C.get_or_init(|| {
        EDGE_LABELS
            .iter()
            .map(|labels| {
                (
                    (labels[0].1, labels[1].1),
                    m2ai_obs::counter(
                        "m2ai_core_health_transitions_total",
                        "session health state-machine transitions",
                        labels,
                    ),
                )
            })
            .collect()
    });
    let key = (health_label(from), health_label(to));
    edges
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, c)| c.clone())
        .expect("every directed edge is registered")
}

/// Window-quality instruments (coverage histogram + fallback patch
/// counter), resolved once per process.
fn window_quality() -> &'static (m2ai_obs::Histogram, m2ai_obs::Counter) {
    static Q: std::sync::OnceLock<(m2ai_obs::Histogram, m2ai_obs::Counter)> =
        std::sync::OnceLock::new();
    Q.get_or_init(|| {
        (
            m2ai_obs::histogram(
                "m2ai_core_frame_coverage_ratio",
                "mean per-tag coverage of each closed frame window",
                &[],
                &m2ai_obs::ratio_buckets(),
            ),
            m2ai_obs::counter(
                "m2ai_core_fallback_patches_total",
                "per-tag spectrum blocks patched from the fallback memory",
                &[],
            ),
        )
    })
}

/// Stream health as judged from window coverage and silence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Coverage is good; predictions are trustworthy.
    Healthy,
    /// Sparse/patched input; predictions carry reduced confidence.
    Degraded,
    /// The stream went silent; predictions are suppressed.
    Stale,
}

/// Thresholds of the health state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Mean per-tag coverage below which a window counts as degraded.
    pub degraded_coverage: f32,
    /// Silence (no readings at all) longer than this marks the stream
    /// Stale and clears the sliding history.
    pub stale_timeout_s: f64,
    /// While Degraded, predictions with top-class probability below
    /// this are suppressed (`0.0` = emit everything, the default).
    pub min_confidence: f32,
    /// Consecutive good windows required to return to Healthy.
    pub recovery_windows: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degraded_coverage: 0.4,
            stale_timeout_s: 2.0,
            min_confidence: 0.0,
            recovery_windows: 2,
        }
    }
}

/// A prediction emitted for one completed frame window.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePrediction {
    /// End time of the window that triggered this prediction.
    pub time_s: f64,
    /// Most likely activity class.
    pub class: usize,
    /// Class probabilities (mean per-frame softmax over the current
    /// frame history).
    pub probabilities: Vec<f32>,
    /// Stream health when this prediction was made.
    pub health: HealthState,
    /// Top-class probability (convenience copy).
    pub confidence: f32,
}

/// Outcome of one closed frame window, emitted by [`SessionWindow`].
///
/// The window layer owns read buffering, frame assembly and the health
/// state machine; what it *doesn't* own is inference. Consumers — the
/// single-stream [`OnlineIdentifier`] and the multi-session
/// [`crate::serve::ServeEngine`] — turn these events into predictions
/// their own way (full-window replay vs. incremental stepping).
#[derive(Debug, Clone, PartialEq)]
pub enum WindowEvent {
    /// A frame was assembled for the window ending at `time_s`.
    Frame {
        /// End time of the closed window.
        time_s: f64,
        /// The spectrum frame (fallback-patched, NaN-sanitised).
        frame: Vec<f32>,
        /// Stream health as of this window.
        health: HealthState,
    },
    /// The stream was silent past [`HealthConfig::stale_timeout_s`] at
    /// the window ending at `time_s`. The window has already cleared
    /// its own fallback memory; consumers must drop *their* history
    /// (frame deques, LSTM state) so a resuming stream starts fresh.
    Stale {
        /// End time of the silent window.
        time_s: f64,
    },
}

/// Per-session read buffering, frame windowing and health tracking.
///
/// Extracted from [`OnlineIdentifier`] so the serve engine can run N
/// of these (one per session slot) against a single shared model. The
/// type is a pure event source: push raw readings in, get
/// [`WindowEvent`]s out, with the out-of-order/duplicate tolerance and
/// the Healthy → Degraded → Stale machinery documented at module
/// level.
#[derive(Debug, Clone)]
pub struct SessionWindow {
    builder: FrameBuilder,
    /// Sliding-history length in frames; bounds the read buffer.
    history_len: usize,
    buffer: Vec<TagReading>,
    next_window_start: f64,
    health: HealthState,
    cfg: HealthConfig,
    fallback: SpectrumFallback,
    /// Timestamp of the newest reading seen so far.
    last_reading_s: f64,
    /// Consecutive good windows since the last degradation.
    good_streak: u32,
    /// Recorded health transitions, in order, capped at
    /// [`TRANSITION_LOG_CAP`] entries.
    transitions: Vec<(HealthState, HealthState)>,
    /// Streaming incremental extraction state; `None` means every
    /// window is built by the batch `FrameBuilder` (the default, and
    /// the fallback for configurations streaming cannot cover).
    extractor: Option<StreamExtractor>,
}

impl SessionWindow {
    /// Creates a window tracker.
    ///
    /// `history_len` is the consumer's sliding-history length in
    /// frames; the read buffer is trimmed to that horizon.
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn new(builder: FrameBuilder, history_len: usize, cfg: HealthConfig) -> Self {
        assert!(history_len > 0, "history must hold at least one frame");
        let fallback = SpectrumFallback::new(builder.layout);
        SessionWindow {
            builder,
            history_len,
            buffer: Vec::new(),
            next_window_start: 0.0,
            health: HealthState::Healthy,
            cfg,
            fallback,
            last_reading_s: f64::NEG_INFINITY,
            good_streak: 0,
            transitions: Vec::new(),
            extractor: None,
        }
    }

    /// Enables streaming incremental extraction (builder style).
    ///
    /// Windows are then maintained by a [`StreamExtractor`] — rank-1
    /// covariance updates plus the GEMM-lowered pseudospectrum scan —
    /// instead of batch rebuilds, with `cfg.refresh_every` bounding
    /// drift. Configurations streaming cannot cover (PhaseOnly /
    /// RssiOnly modes, frames not aligned to antenna rounds) silently
    /// keep the batch path; check [`SessionWindow::streaming_active`].
    #[must_use]
    pub fn with_streaming(mut self, cfg: StreamingExtract) -> Self {
        self.extractor = StreamExtractor::try_new(&self.builder, cfg);
        self
    }

    /// `true` when windows are built by the streaming extractor.
    pub fn streaming_active(&self) -> bool {
        self.extractor.is_some()
    }

    /// Current stream health.
    pub fn health(&self) -> HealthState {
        self.health
    }

    /// The health transitions this session has gone through, in order
    /// (`(from, to)` pairs; capped at an internal limit so long-lived
    /// sessions stay bounded).
    pub fn transitions(&self) -> &[(HealthState, HealthState)] {
        &self.transitions
    }

    /// Moves the state machine to `next`, recording the transition both
    /// locally and in the global metrics registry. A no-op when the
    /// state is unchanged.
    fn set_health(&mut self, next: HealthState) {
        if next == self.health {
            return;
        }
        let prev = self.health;
        self.health = next;
        if self.transitions.len() < TRANSITION_LOG_CAP {
            self.transitions.push((prev, next));
        }
        transition_counter(prev, next).inc();
    }

    /// The frame layout's flat dimension (what `Frame` events carry).
    pub fn frame_dim(&self) -> usize {
        self.builder.layout.frame_dim()
    }

    /// Inserts a reading into the time-sorted window buffer, dropping
    /// exact duplicates (same time, tag, antenna and channel — e.g. an
    /// LLRP retransmission).
    fn insert_sorted(&mut self, r: &TagReading) -> bool {
        // Key equality ⟺ "same physical read", so a strict comparison
        // both keeps the buffer sorted and exposes duplicates at the
        // insertion point. (Timestamps are finite here — `push`
        // rejects non-finite ones — so the partial order is total.)
        let key = |x: &TagReading| (x.time_s, x.tag.0, x.antenna, x.channel);
        let pos = self.buffer.partition_point(|x| key(x) < key(r));
        if pos < self.buffer.len() && key(&self.buffer[pos]) == key(r) {
            return false;
        }
        self.buffer.insert(pos, r.clone());
        true
    }

    /// Closes the window starting at `next_window_start`: builds the
    /// frame, applies the fallback, updates health, and emits one
    /// event.
    fn close_window(&mut self, out: &mut Vec<WindowEvent>) {
        let frame_len = self.builder.frame_duration_s;
        let window_start = self.next_window_start;
        let window_end = window_start + frame_len;
        let window_had_reads = self
            .buffer
            .iter()
            .any(|b| b.time_s >= window_start && b.time_s < window_end);

        // Staleness: nothing has arrived for `stale_timeout_s` as of
        // this window's end. Drop fallback memory — whatever was
        // happening before the gap is over — and tell the consumer to
        // do the same. (The buffer is time-sorted, so the newest
        // pre-window reading is the last one before `window_end`; the
        // reading that *triggered* this close lies at or past the
        // window end and does not count.)
        let last_before = self
            .buffer
            .iter()
            .rev()
            .find(|b| b.time_s < window_end)
            .map(|b| b.time_s);
        let stale = !window_had_reads
            && match last_before {
                Some(t) => window_end - t >= self.cfg.stale_timeout_s,
                None => true,
            };
        if stale {
            self.set_health(HealthState::Stale);
            self.good_streak = 0;
            self.fallback.reset();
            self.next_window_start += frame_len;
            let horizon = self.next_window_start - frame_len * self.history_len as f64;
            self.buffer.retain(|b| b.time_s >= horizon);
            out.push(WindowEvent::Stale { time_s: window_end });
            return;
        }

        // Attach extraction to the pushing frame's trace (ambient
        // context; a no-op span when the push was unsampled).
        let mut extract_span = m2ai_obs::trace::span("extract");
        extract_span.set_time_s(window_end);
        let (mut frame, quality) = match &mut self.extractor {
            Some(ex) => ex.extract(window_start),
            None => self
                .builder
                .build_frame_with_quality(&self.buffer, window_start),
        };
        extract_span.end();
        let patched = self.fallback.observe_and_patch(&mut frame, &quality);
        let (coverage_hist, patch_counter) = window_quality();
        coverage_hist.observe(quality.mean_coverage() as f64);
        if patched > 0 {
            patch_counter.add(patched as u64);
        }

        // Health transition for this window.
        let degraded = !window_had_reads
            || patched > 0
            || quality.mean_coverage() < self.cfg.degraded_coverage;
        if degraded {
            self.set_health(HealthState::Degraded);
            self.good_streak = 0;
        } else {
            self.good_streak = self.good_streak.saturating_add(1);
            if self.health != HealthState::Healthy {
                // Hysteretic recovery: a formerly Stale stream passes
                // through Degraded while the streak builds.
                let next = if self.good_streak >= self.cfg.recovery_windows {
                    HealthState::Healthy
                } else {
                    HealthState::Degraded
                };
                self.set_health(next);
            }
        }

        self.next_window_start += frame_len;
        // Drop readings older than the sliding history.
        let horizon = self.next_window_start - frame_len * self.history_len as f64;
        self.buffer.retain(|b| b.time_s >= horizon);
        out.push(WindowEvent::Frame {
            time_s: window_end,
            frame,
            health: self.health,
        });
    }

    /// Pushes a batch of readings (need not be aligned to windows),
    /// appending one [`WindowEvent`] per frame window completed by
    /// this batch.
    ///
    /// Readings may arrive out of order and duplicated; the buffer
    /// sorts and dedups them. Windows close when a reading at or past
    /// the window end shows up. Non-finite timestamps are rejected
    /// outright (they cannot be ordered).
    pub fn push(&mut self, readings: &[TagReading], out: &mut Vec<WindowEvent>) {
        let frame_len = self.builder.frame_duration_s;
        for r in readings {
            if !r.time_s.is_finite() {
                continue;
            }
            if self.insert_sorted(r) {
                // Retained (non-duplicate) readings feed the streaming
                // extractor so its round slots mirror the buffer.
                if let Some(ex) = &mut self.extractor {
                    ex.ingest(r);
                }
            }
            if r.time_s > self.last_reading_s {
                self.last_reading_s = r.time_s;
            }
            // Close every window that ends at or before this reading.
            while r.time_s >= self.next_window_start + frame_len {
                self.close_window(out);
            }
        }
    }
}

/// Streaming wrapper: reader stream in, per-window predictions out.
///
/// Single-stream consumer of [`SessionWindow`] events. Inference is
/// full-window replay (`try_predict_proba` over the sliding frame
/// history) through a persistent [`KernelScratch`], so the steady
/// state allocates nothing per window. For many concurrent streams on
/// one model, use [`crate::serve::ServeEngine`], which replaces the
/// replay with incremental batched stepping.
#[derive(Debug)]
pub struct OnlineIdentifier {
    window: SessionWindow,
    model: SequenceClassifier,
    /// Sliding window length in frames (the training `T`).
    history_len: usize,
    frames: VecDeque<Vec<f32>>,
    /// Predictions suppressed (Stale stream or gated confidence).
    suppressed: usize,
    /// Reused event buffer (drained every push).
    events: Vec<WindowEvent>,
    scratch: KernelScratch,
}

impl Clone for OnlineIdentifier {
    fn clone(&self) -> Self {
        OnlineIdentifier {
            window: self.window.clone(),
            model: self.model.clone(),
            history_len: self.history_len,
            frames: self.frames.clone(),
            suppressed: self.suppressed,
            events: Vec::new(),
            // The pool is a cache, not state: a fresh one is
            // behaviourally identical.
            scratch: KernelScratch::new(),
        }
    }
}

impl OnlineIdentifier {
    /// Creates a streaming identifier with the default [`HealthConfig`].
    ///
    /// `history_len` should match the `frames_per_sample` the model was
    /// trained with.
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn new(builder: FrameBuilder, model: SequenceClassifier, history_len: usize) -> Self {
        Self::with_health_config(builder, model, history_len, HealthConfig::default())
    }

    /// Creates a streaming identifier with explicit health thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn with_health_config(
        builder: FrameBuilder,
        model: SequenceClassifier,
        history_len: usize,
        health_cfg: HealthConfig,
    ) -> Self {
        OnlineIdentifier {
            window: SessionWindow::new(builder, history_len, health_cfg),
            model,
            history_len,
            frames: VecDeque::new(),
            suppressed: 0,
            events: Vec::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// Number of frames currently in the sliding history.
    pub fn history_fill(&self) -> usize {
        self.frames.len()
    }

    /// Current stream health.
    pub fn health(&self) -> HealthState {
        self.window.health()
    }

    /// Number of predictions suppressed so far (Stale windows and
    /// confidence-gated Degraded windows).
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// The health transitions this stream has gone through, in order.
    pub fn transitions(&self) -> &[(HealthState, HealthState)] {
        self.window.transitions()
    }

    /// Pushes a batch of readings (need not be aligned to windows);
    /// returns one prediction per frame window completed by this batch.
    ///
    /// Readings may arrive out of order and duplicated; the buffer
    /// sorts and dedups them. Windows close when a reading at or past
    /// the window end shows up. Non-finite timestamps are rejected
    /// outright (they cannot be ordered).
    pub fn push(&mut self, readings: &[TagReading]) -> Vec<OnlinePrediction> {
        let mut events = std::mem::take(&mut self.events);
        self.window.push(readings, &mut events);
        let mut out = Vec::new();
        for ev in events.drain(..) {
            match ev {
                WindowEvent::Stale { .. } => {
                    self.frames.clear();
                    self.suppressed += 1;
                }
                WindowEvent::Frame {
                    time_s,
                    frame,
                    health,
                } => {
                    self.frames.push_back(frame);
                    if self.frames.len() > self.history_len {
                        self.frames.pop_front();
                    }
                    if self.frames.len() == self.history_len {
                        self.predict(time_s, health, &mut out);
                    }
                }
            }
        }
        self.events = events;
        out
    }

    /// Replays the full frame history through the model and appends a
    /// prediction (or counts a suppression).
    fn predict(&mut self, time_s: f64, health: HealthState, out: &mut Vec<OnlinePrediction>) {
        self.frames.make_contiguous();
        let (seq, _) = self.frames.as_slices();
        let Ok(probabilities) = self.model.try_predict_proba_with(seq, &mut self.scratch) else {
            // Unscorable history (diverged model, non-finite output):
            // suppress rather than emit garbage.
            self.suppressed += 1;
            return;
        };
        let (class, confidence) =
            probabilities
                .iter()
                .enumerate()
                .fold((0usize, f32::NEG_INFINITY), |best, (i, &p)| {
                    if p > best.1 {
                        (i, p)
                    } else {
                        best
                    }
                });
        if health == HealthState::Degraded && confidence < self.window.cfg.min_confidence {
            self.suppressed += 1;
            return;
        }
        out.push(OnlinePrediction {
            time_s,
            class,
            probabilities,
            health,
            confidence,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PhaseCalibrator;
    use crate::frames::{FeatureMode, FrameLayout};
    use crate::network::{build_model, Architecture};
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    fn stream(duration: f64) -> Vec<TagReading> {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
        reader.run(|_| scene.clone(), duration)
    }

    fn identifier(history: usize) -> OnlineIdentifier {
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
        OnlineIdentifier::new(builder, model, history)
    }

    #[test]
    fn emits_after_history_fills() {
        let mut ident = identifier(4);
        // 1.9 s: only 3 full windows of 0.5 s close (a window closes
        // when a reading beyond its end arrives) → no prediction yet.
        let early = ident.push(&stream(1.9));
        assert!(early.is_empty(), "history not full yet: {early:?}");
        assert!(ident.history_fill() <= 4);
        // Continue the stream past 2.5 s: predictions appear.
        let rest: Vec<TagReading> = stream(4.0)
            .into_iter()
            .filter(|r| r.time_s >= 1.9)
            .collect();
        let preds = ident.push(&rest);
        assert!(!preds.is_empty());
        for p in &preds {
            assert!(p.class < 12);
            assert!((p.probabilities.iter().sum::<f32>() - 1.0).abs() < 1e-4);
            assert!(p.confidence > 0.0 && p.confidence <= 1.0);
        }
    }

    #[test]
    fn one_prediction_per_window() {
        let mut ident = identifier(2);
        let preds = ident.push(&stream(4.05));
        // Windows of 0.5 s over 4 s: 7 closed windows after the first
        // fills history (window k closes at reading past (k+1)·0.5).
        assert!(
            (5..=8).contains(&preds.len()),
            "got {} predictions",
            preds.len()
        );
        // Times strictly increase by one window.
        for w in preds.windows(2) {
            assert!((w[1].time_s - w[0].time_s - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let readings = stream(4.0);
        let mut batch_ident = identifier(3);
        let batch = batch_ident.push(&readings);
        let mut inc_ident = identifier(3);
        let mut incremental = Vec::new();
        for chunk in readings.chunks(17) {
            incremental.extend(inc_ident.push(chunk));
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn healthy_on_a_clean_stream() {
        let mut ident = identifier(2);
        let preds = ident.push(&stream(4.0));
        assert!(!preds.is_empty());
        // A dense, continuous stream must not trip the state machine.
        assert!(
            preds.iter().all(|p| p.health == HealthState::Healthy),
            "clean stream flagged: {:?}",
            preds.iter().map(|p| p.health).collect::<Vec<_>>()
        );
        assert_eq!(ident.suppressed(), 0);
    }

    #[test]
    fn duplicates_are_dropped() {
        let readings = stream(4.0);
        let mut doubled = Vec::new();
        for r in &readings {
            doubled.push(r.clone());
            doubled.push(r.clone()); // exact retransmission
        }
        let mut a = identifier(2);
        let pa = a.push(&readings);
        let mut b = identifier(2);
        let pb = b.push(&doubled);
        assert_eq!(pa, pb, "duplicates must not skew frames");
    }

    #[test]
    fn out_of_order_within_window_matches_sorted() {
        let readings = stream(4.0);
        // Reverse inside small groups, keeping window boundaries: every
        // group stays inside one 0.5 s window (group span ≤ 0.1 s ≪
        // window), so no window-close trigger is reordered across a
        // boundary.
        let mut shuffled = Vec::new();
        for chunk in readings.chunks(4) {
            let mut g: Vec<TagReading> = chunk.to_vec();
            let all_same_window = g
                .iter()
                .all(|r| (r.time_s / 0.5).floor() == (g[0].time_s / 0.5).floor());
            if all_same_window {
                g.reverse();
            }
            shuffled.extend(g);
        }
        let mut a = identifier(2);
        let pa = a.push(&readings);
        let mut b = identifier(2);
        let pb = b.push(&shuffled);
        assert_eq!(pa, pb, "in-window reordering must not change output");
    }

    #[test]
    fn non_finite_timestamps_are_rejected() {
        let mut ident = identifier(2);
        let mut readings = stream(4.0);
        let mut poison = readings[0].clone();
        poison.time_s = f64::NAN;
        readings.insert(10, poison);
        let preds = ident.push(&readings);
        assert!(!preds.is_empty());
        for p in &preds {
            assert!(p.probabilities.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn goes_stale_on_silence_and_recovers() {
        let cfg = HealthConfig {
            stale_timeout_s: 1.0,
            ..HealthConfig::default()
        };
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
        let mut ident = OnlineIdentifier::with_health_config(builder, model, 2, cfg);

        // 0–2 s of stream, then a 3 s gap, then stream again.
        let full = stream(7.0);
        let before: Vec<TagReading> = full.iter().filter(|r| r.time_s < 2.0).cloned().collect();
        let after: Vec<TagReading> = full.iter().filter(|r| r.time_s >= 5.0).cloned().collect();

        let p1 = ident.push(&before);
        assert!(!p1.is_empty());
        let suppressed_before = ident.suppressed();

        let p2 = ident.push(&after);
        // The silent windows are suppressed, not predicted.
        assert!(ident.suppressed() > suppressed_before, "gap must suppress");
        // After the gap the history refills and predictions resume.
        assert!(!p2.is_empty(), "stream resumption must recover");
        let last = p2.last().unwrap();
        assert!(last.probabilities.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "history")]
    fn zero_history_panics() {
        identifier(0);
    }
}
