//! Realtime (streaming) identification.
//!
//! The paper's deployment (Section V) streams LLRP reads to a backend
//! that identifies activities *in realtime*. [`OnlineIdentifier`]
//! packages that mode: push readings as they arrive, and it maintains a
//! sliding sequence of spectrum frames, emitting a prediction whenever
//! a fresh frame completes.

use crate::frames::FrameBuilder;
use m2ai_nn::model::SequenceClassifier;
use m2ai_rfsim::reading::TagReading;
use std::collections::VecDeque;

/// A prediction emitted for one completed frame window.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlinePrediction {
    /// End time of the window that triggered this prediction.
    pub time_s: f64,
    /// Most likely activity class.
    pub class: usize,
    /// Class probabilities (mean per-frame softmax over the current
    /// frame history).
    pub probabilities: Vec<f32>,
}

/// Streaming wrapper: reader stream in, per-window predictions out.
#[derive(Debug, Clone)]
pub struct OnlineIdentifier {
    builder: FrameBuilder,
    model: SequenceClassifier,
    /// Sliding window length in frames (the training `T`).
    history_len: usize,
    buffer: Vec<TagReading>,
    frames: VecDeque<Vec<f32>>,
    next_window_start: f64,
}

impl OnlineIdentifier {
    /// Creates a streaming identifier.
    ///
    /// `history_len` should match the `frames_per_sample` the model was
    /// trained with.
    ///
    /// # Panics
    ///
    /// Panics if `history_len` is zero.
    pub fn new(builder: FrameBuilder, model: SequenceClassifier, history_len: usize) -> Self {
        assert!(history_len > 0, "history must hold at least one frame");
        OnlineIdentifier {
            builder,
            model,
            history_len,
            buffer: Vec::new(),
            frames: VecDeque::new(),
            next_window_start: 0.0,
        }
    }

    /// Number of frames currently in the sliding history.
    pub fn history_fill(&self) -> usize {
        self.frames.len()
    }

    /// Pushes a batch of readings (need not be aligned to windows);
    /// returns one prediction per frame window completed by this batch.
    ///
    /// Readings may arrive slightly out of order within a window;
    /// windows close when a reading at or past the window end shows up.
    pub fn push(&mut self, readings: &[TagReading]) -> Vec<OnlinePrediction> {
        let mut out = Vec::new();
        let frame_len = self.builder.frame_duration_s;
        for r in readings {
            self.buffer.push(r.clone());
            // Close every window that ends at or before this reading.
            while r.time_s >= self.next_window_start + frame_len {
                let frame = self
                    .builder
                    .build_frame(&self.buffer, self.next_window_start);
                self.frames.push_back(frame);
                if self.frames.len() > self.history_len {
                    self.frames.pop_front();
                }
                self.next_window_start += frame_len;
                // Drop readings older than the sliding history.
                let horizon = self.next_window_start - frame_len * self.history_len as f64;
                self.buffer.retain(|b| b.time_s >= horizon);

                if self.frames.len() == self.history_len {
                    let seq: Vec<Vec<f32>> = self.frames.iter().cloned().collect();
                    let probabilities = self.model.predict_proba(&seq);
                    let class = probabilities
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    out.push(OnlinePrediction {
                        time_s: self.next_window_start,
                        class,
                        probabilities,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PhaseCalibrator;
    use crate::frames::{FeatureMode, FrameLayout};
    use crate::network::{build_model, Architecture};
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    fn stream(duration: f64) -> Vec<TagReading> {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
        reader.run(|_| scene.clone(), duration)
    }

    fn identifier(history: usize) -> OnlineIdentifier {
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
        OnlineIdentifier::new(builder, model, history)
    }

    #[test]
    fn emits_after_history_fills() {
        let mut ident = identifier(4);
        // 1.9 s: only 3 full windows of 0.5 s close (a window closes
        // when a reading beyond its end arrives) → no prediction yet.
        let early = ident.push(&stream(1.9));
        assert!(early.is_empty(), "history not full yet: {early:?}");
        assert!(ident.history_fill() <= 4);
        // Continue the stream past 2.5 s: predictions appear.
        let rest: Vec<TagReading> = stream(4.0)
            .into_iter()
            .filter(|r| r.time_s >= 1.9)
            .collect();
        let preds = ident.push(&rest);
        assert!(!preds.is_empty());
        for p in &preds {
            assert!(p.class < 12);
            assert!((p.probabilities.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn one_prediction_per_window() {
        let mut ident = identifier(2);
        let preds = ident.push(&stream(4.05));
        // Windows of 0.5 s over 4 s: 7 closed windows after the first
        // fills history (window k closes at reading past (k+1)·0.5).
        assert!(
            (5..=8).contains(&preds.len()),
            "got {} predictions",
            preds.len()
        );
        // Times strictly increase by one window.
        for w in preds.windows(2) {
            assert!((w[1].time_s - w[0].time_s - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let readings = stream(4.0);
        let mut batch_ident = identifier(3);
        let batch = batch_ident.push(&readings);
        let mut inc_ident = identifier(3);
        let mut incremental = Vec::new();
        for chunk in readings.chunks(17) {
            incremental.extend(inc_ident.push(chunk));
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    #[should_panic(expected = "history")]
    fn zero_history_panics() {
        identifier(0);
    }
}
