//! Phase calibration across hopping channels (Section III-A, Eq. 1).
//!
//! Frequency hopping injects a per-channel phase offset (Fig. 3). The
//! paper's remedy: record a stationary interval, take the median phase
//! per channel, and map every measurement onto a common reference
//! channel: `φ̂(t) = φ_j(t) − φ̄_j + φ̄_r`.
//!
//! Medians here are *circular* (phases wrap at 2π), and offsets are
//! learned per `(tag, antenna, channel)` link so that the π reporting
//! ambiguity — constant per link — is absorbed too. Channels never
//! observed during the stationary interval fall back to the nearest
//! observed channel's offset (offsets vary smoothly with frequency,
//! Fig. 3).

use m2ai_dsp::phase::wrap_positive;
use m2ai_dsp::stats::circular_median;
use m2ai_rfsim::channel::{common_channel_index, N_CHANNELS};
use m2ai_rfsim::reading::TagReading;

/// Learned per-link, per-channel calibration offsets.
#[derive(Debug, Clone)]
pub struct PhaseCalibrator {
    n_tags: usize,
    n_antennas: usize,
    /// `medians[link][channel]`: circular median phase, or NaN if the
    /// channel was never observed for that link.
    medians: Vec<Vec<f64>>,
    /// Reference (common-channel) median per link.
    reference: Vec<f64>,
    enabled: bool,
}

impl PhaseCalibrator {
    /// Learns offsets from readings of a stationary interval.
    ///
    /// The interval should span at least one full hop cycle (20 s with
    /// the standard 400 ms dwell) so every channel is visited; missing
    /// channels are interpolated from the nearest observed one.
    ///
    /// # Panics
    ///
    /// Panics if `n_tags` or `n_antennas` is zero.
    pub fn learn(readings: &[TagReading], n_tags: usize, n_antennas: usize) -> Self {
        assert!(n_tags > 0 && n_antennas > 0, "need tags and antennas");
        let n_links = n_tags * n_antennas;
        // Bucket phases per (link, channel).
        let mut buckets: Vec<Vec<Vec<f64>>> = vec![vec![Vec::new(); N_CHANNELS]; n_links];
        for r in readings {
            let tag = r.tag.0;
            if tag >= n_tags || r.antenna >= n_antennas || r.channel >= N_CHANNELS {
                continue;
            }
            // A corrupted report must not poison a whole channel's
            // median.
            if !r.phase_rad.is_finite() {
                continue;
            }
            buckets[tag * n_antennas + r.antenna][r.channel].push(r.phase_rad);
        }
        let mut medians = vec![vec![f64::NAN; N_CHANNELS]; n_links];
        for (link, chans) in buckets.iter().enumerate() {
            for (c, phases) in chans.iter().enumerate() {
                if !phases.is_empty() {
                    medians[link][c] = circular_median(phases);
                }
            }
        }
        // Fill gaps from the nearest observed channel.
        for link in medians.iter_mut() {
            let observed: Vec<usize> = (0..N_CHANNELS).filter(|&c| !link[c].is_nan()).collect();
            if observed.is_empty() {
                continue;
            }
            for c in 0..N_CHANNELS {
                if link[c].is_nan() {
                    let nearest = *observed
                        .iter()
                        .min_by_key(|&&o| o.abs_diff(c))
                        .expect("non-empty");
                    link[c] = link[nearest];
                }
            }
        }
        let r = common_channel_index();
        let reference: Vec<f64> = medians
            .iter()
            .map(|link| if link[r].is_nan() { 0.0 } else { link[r] })
            .collect();
        PhaseCalibrator {
            n_tags,
            n_antennas,
            medians,
            reference,
            enabled: true,
        }
    }

    /// Fallible variant of [`PhaseCalibrator::learn`]: fails with
    /// [`Error::EmptyWindow`](crate::error::Error::EmptyWindow) when the
    /// stationary interval contains *no* usable (finite, in-range)
    /// reading at all, instead of silently returning a calibrator that
    /// passes everything through.
    pub fn try_learn(
        readings: &[TagReading],
        n_tags: usize,
        n_antennas: usize,
    ) -> Result<Self, crate::error::Error> {
        let usable = readings.iter().any(|r| {
            r.tag.0 < n_tags
                && r.antenna < n_antennas
                && r.channel < N_CHANNELS
                && r.phase_rad.is_finite()
        });
        if !usable {
            return Err(crate::error::Error::EmptyWindow);
        }
        Ok(Self::learn(readings, n_tags, n_antennas))
    }

    /// A pass-through calibrator (the Fig. 10 "no calibration" arm).
    pub fn disabled(n_tags: usize, n_antennas: usize) -> Self {
        PhaseCalibrator {
            n_tags,
            n_antennas,
            medians: Vec::new(),
            reference: Vec::new(),
            enabled: false,
        }
    }

    /// `true` if this calibrator actually corrects phases.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Calibrated phase of a reading, in `[0, 2π)` (Eq. 1).
    ///
    /// Readings from unknown links or with no learned offset pass
    /// through unchanged.
    pub fn calibrate(&self, reading: &TagReading) -> f64 {
        if !self.enabled {
            return reading.phase_rad;
        }
        let tag = reading.tag.0;
        if tag >= self.n_tags || reading.antenna >= self.n_antennas || reading.channel >= N_CHANNELS
        {
            return reading.phase_rad;
        }
        let link = tag * self.n_antennas + reading.antenna;
        let med = self.medians[link][reading.channel];
        if med.is_nan() {
            return reading.phase_rad;
        }
        wrap_positive(reading.phase_rad - med + self.reference[link])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2ai_rfsim::channel::channel_frequency_hz;
    use m2ai_rfsim::reading::TagId;

    fn reading(tag: usize, antenna: usize, channel: usize, phase: f64) -> TagReading {
        TagReading {
            time_s: 0.0,
            tag: TagId(tag),
            antenna,
            channel,
            frequency_hz: channel_frequency_hz(channel),
            phase_rad: wrap_positive(phase),
            rssi_dbm: -30.0,
            doppler_hz: 0.0,
        }
    }

    /// Synthetic stationary readings: true phase θ per link plus a
    /// per-channel offset.
    fn stationary(offsets: &[f64], theta: f64) -> Vec<TagReading> {
        let mut out = Vec::new();
        for (c, &off) in offsets.iter().enumerate().take(N_CHANNELS) {
            for _ in 0..5 {
                out.push(reading(0, 0, c, theta + off));
            }
        }
        out
    }

    #[test]
    fn removes_channel_offsets() {
        let offsets: Vec<f64> = (0..N_CHANNELS).map(|c| 0.11 * c as f64).collect();
        let theta = 1.2;
        let cal = PhaseCalibrator::learn(&stationary(&offsets, theta), 1, 1);
        // A fresh reading on any channel calibrates to the same value.
        let r_common = common_channel_index();
        let expect = wrap_positive(theta + offsets[r_common]);
        for c in [0usize, 7, 23, 49] {
            let got = cal.calibrate(&reading(0, 0, c, theta + offsets[c] + 0.5));
            let want = wrap_positive(expect + 0.5);
            let diff = (got - want)
                .abs()
                .min(2.0 * std::f64::consts::PI - (got - want).abs());
            assert!(diff < 1e-6, "channel {c}: got {got}, want {want}");
        }
    }

    #[test]
    fn disabled_passes_through() {
        let cal = PhaseCalibrator::disabled(2, 4);
        assert!(!cal.is_enabled());
        let r = reading(1, 2, 30, 2.2);
        assert_eq!(cal.calibrate(&r), r.phase_rad);
    }

    #[test]
    fn unseen_channels_borrow_nearest() {
        // Observe only channels 0..10; channel 45 should reuse 9's
        // offset (nearest observed).
        let offsets: Vec<f64> = (0..N_CHANNELS).map(|c| 0.05 * c as f64).collect();
        let theta = 0.4;
        let mut readings = Vec::new();
        for (c, &off) in offsets.iter().enumerate().take(10) {
            for _ in 0..5 {
                readings.push(reading(0, 0, c, theta + off));
            }
        }
        let cal = PhaseCalibrator::learn(&readings, 1, 1);
        // Calibrating an unseen channel should not panic and should
        // apply channel 9's offset (nearest).
        let got = cal.calibrate(&reading(0, 0, 45, theta + offsets[9] + 0.2));
        let reference = cal.calibrate(&reading(0, 0, 9, theta + offsets[9] + 0.2));
        assert!((got - reference).abs() < 1e-9);
    }

    #[test]
    fn per_link_independence() {
        // Two antennas with different offsets stay separate.
        let mut readings = Vec::new();
        for c in 0..N_CHANNELS {
            for _ in 0..3 {
                readings.push(reading(0, 0, c, 1.0 + 0.1 * c as f64));
                readings.push(reading(0, 1, c, 2.0 + 0.2 * c as f64));
            }
        }
        let cal = PhaseCalibrator::learn(&readings, 1, 2);
        let a = cal.calibrate(&reading(0, 0, 5, 1.5));
        let b = cal.calibrate(&reading(0, 1, 5, 1.5));
        assert!((a - b).abs() > 0.01, "links must calibrate independently");
    }

    #[test]
    fn unknown_link_passes_through() {
        let cal = PhaseCalibrator::learn(&stationary(&vec![0.0; N_CHANNELS], 1.0), 1, 1);
        let foreign = reading(5, 0, 3, 0.7);
        assert_eq!(cal.calibrate(&foreign), foreign.phase_rad);
    }

    #[test]
    fn wrapped_phases_calibrate_correctly() {
        // Phases straddling the 0/2π boundary: circular median must not
        // split the cluster.
        let mut readings = Vec::new();
        for c in 0..N_CHANNELS {
            for k in 0..5 {
                let jitter = (k as f64 - 2.0) * 0.02;
                readings.push(reading(0, 0, c, 6.25 + jitter)); // ≈ 2π−0.03
            }
        }
        let cal = PhaseCalibrator::learn(&readings, 1, 1);
        let got = cal.calibrate(&reading(0, 0, 10, 6.25));
        // Everything maps near the reference median ≈ 6.25.
        let d = (got - 6.25)
            .abs()
            .min(2.0 * std::f64::consts::PI - (got - 6.25).abs());
        assert!(d < 0.1, "got {got}");
    }

    #[test]
    #[should_panic(expected = "need tags")]
    fn zero_tags_panics() {
        PhaseCalibrator::learn(&[], 0, 1);
    }

    #[test]
    fn nan_phases_do_not_poison_medians() {
        let offsets: Vec<f64> = (0..N_CHANNELS).map(|c| 0.1 * c as f64).collect();
        let mut readings = stationary(&offsets, 1.0);
        // Interleave corrupted reports on every channel.
        let n = readings.len();
        for i in (0..n).step_by(3) {
            let mut bad = readings[i].clone();
            bad.phase_rad = f64::NAN;
            readings.push(bad);
        }
        let cal = PhaseCalibrator::learn(&readings, 1, 1);
        let got = cal.calibrate(&reading(0, 0, 5, 1.0 + offsets[5]));
        assert!(got.is_finite(), "corrupted reports leaked into medians");
    }

    #[test]
    fn try_learn_rejects_unusable_windows() {
        use crate::error::Error;
        assert!(matches!(
            PhaseCalibrator::try_learn(&[], 1, 1),
            Err(Error::EmptyWindow)
        ));
        let mut bad = reading(0, 0, 3, 1.0);
        bad.phase_rad = f64::NAN;
        assert!(matches!(
            PhaseCalibrator::try_learn(&[bad], 1, 1),
            Err(Error::EmptyWindow)
        ));
        let ok = PhaseCalibrator::try_learn(&stationary(&vec![0.0; N_CHANNELS], 1.0), 1, 1);
        assert!(ok.is_ok());
    }
}
