//! End-to-end training/evaluation and the Fig. 9 baseline battery.

use crate::dataset::{flatten_for_classical, sequence_for_hmm, DatasetBundle};
use crate::network::{build_model, Architecture};
use m2ai_baselines::boost::AdaBoost;
use m2ai_baselines::gp::GaussianProcess;
use m2ai_baselines::hmm::HmmClassifier;
use m2ai_baselines::knn::KNearestNeighbors;
use m2ai_baselines::nb::GaussianNaiveBayes;
use m2ai_baselines::qda::Qda;
use m2ai_baselines::svm::{LinearSvm, RbfSvm};
use m2ai_baselines::tree::{DecisionTree, RandomForest};
use m2ai_baselines::Classifier;
use m2ai_nn::metrics::ConfusionMatrix;
use m2ai_nn::model::SequenceClassifier;
use m2ai_nn::train::{
    confusion, evaluate, fit, train_test_split, Sample, TrainConfig, TrainReport,
};

/// Training options for the deep engine.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Engine architecture (Fig. 17 knob).
    pub architecture: Architecture,
    /// Epochs (paper: 100).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum.
    pub momentum: f32,
    /// Gradient-norm ceiling.
    pub clip_norm: Option<f32>,
    /// Minibatch size.
    pub batch_size: usize,
    /// Per-epoch learning-rate multiplier.
    pub lr_decay: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// Worker threads.
    pub n_threads: usize,
    /// Held-out fraction (paper: 20 %).
    pub test_fraction: f64,
    /// Split/shuffle/init seed.
    pub seed: u64,
    /// Progress print interval in epochs (0 = silent).
    pub log_every: usize,
}

impl TrainOptions {
    /// The paper's training regime (100 epochs, 80/20 split).
    pub fn paper_default() -> Self {
        TrainOptions {
            architecture: Architecture::CnnLstm,
            epochs: 100,
            lr: 0.05,
            momentum: 0.9,
            clip_norm: Some(5.0),
            batch_size: 16,
            lr_decay: 0.995,
            weight_decay: 4e-4,
            n_threads: 8,
            test_fraction: 0.2,
            seed: 7,
            log_every: 0,
        }
    }

    /// A reduced regime for smoke tests and the `cargo bench` figures.
    pub fn fast() -> Self {
        TrainOptions {
            epochs: 25,
            lr: 0.08,
            ..TrainOptions::paper_default()
        }
    }
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions::paper_default()
    }
}

/// Result of training the deep engine on a dataset.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Accuracy on the held-out test split.
    pub test_accuracy: f64,
    /// Accuracy on the training split.
    pub train_accuracy: f64,
    /// Confusion matrix over the test split (Table I).
    pub confusion: ConfusionMatrix,
    /// Per-epoch loss trace.
    pub report: TrainReport,
    /// The trained model.
    pub model: SequenceClassifier,
}

/// Trains the selected architecture on `bundle` with an 80/20 split.
///
/// # Panics
///
/// Panics if the bundle has too few samples to split.
pub fn train_m2ai(bundle: &DatasetBundle, opts: &TrainOptions) -> TrainOutcome {
    let (train, test) = train_test_split(bundle.samples.clone(), opts.test_fraction, opts.seed);
    let mut model = build_model(
        &bundle.layout,
        bundle.n_classes,
        opts.architecture,
        opts.seed,
    );
    let cfg = TrainConfig {
        epochs: opts.epochs,
        lr: opts.lr,
        momentum: opts.momentum,
        clip_norm: opts.clip_norm,
        batch_size: opts.batch_size,
        n_threads: opts.n_threads,
        lr_decay: opts.lr_decay,
        weight_decay: opts.weight_decay,
        seed: opts.seed,
        log_every: opts.log_every,
    };
    let report = fit(&mut model, &train, &cfg);
    TrainOutcome {
        test_accuracy: evaluate(&model, &test),
        train_accuracy: evaluate(&model, &train),
        confusion: confusion(&model, &test),
        report,
        model,
    }
}

/// Standardises features to zero mean / unit variance using training
/// statistics (classical models are scale-sensitive).
fn standardize(train: &mut [Vec<f32>], test: &mut [Vec<f32>]) {
    let d = train.first().map(|v| v.len()).unwrap_or(0);
    let n = train.len().max(1) as f32;
    let mut mean = vec![0.0f32; d];
    for row in train.iter() {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v / n;
        }
    }
    let mut std = vec![0.0f32; d];
    for row in train.iter() {
        for (s, (v, m)) in std.iter_mut().zip(row.iter().zip(&mean)) {
            *s += (v - m) * (v - m) / n;
        }
    }
    std.iter_mut().for_each(|s| *s = s.sqrt().max(1e-6));
    for row in train.iter_mut().chain(test.iter_mut()) {
        for j in 0..d {
            row[j] = (row[j] - mean[j]) / std[j];
        }
    }
}

/// Accuracy of every classical baseline of Fig. 9 on the bundle,
/// using the same split protocol as the deep engine.
///
/// Returns `(name, test accuracy)` pairs, one per classifier, with
/// the HMM sequence baseline last. `n_threads` fans the battery out
/// one classifier per worker (0 = all cores, 1 = serial); every
/// classifier trains on the same precomputed features with its own
/// internal state, so the scores are identical for every setting.
pub fn evaluate_baselines(
    bundle: &DatasetBundle,
    test_fraction: f64,
    seed: u64,
    n_threads: usize,
) -> Vec<(String, f64)> {
    let (train, test): (Vec<Sample>, Vec<Sample>) =
        train_test_split(bundle.samples.clone(), test_fraction, seed);
    let layout = bundle.layout;

    let mut train_x: Vec<Vec<f32>> = train
        .iter()
        .map(|(f, _)| flatten_for_classical(f, &layout))
        .collect();
    let train_y: Vec<usize> = train.iter().map(|(_, y)| *y).collect();
    let mut test_x: Vec<Vec<f32>> = test
        .iter()
        .map(|(f, _)| flatten_for_classical(f, &layout))
        .collect();
    let test_y: Vec<usize> = test.iter().map(|(_, y)| *y).collect();
    standardize(&mut train_x, &mut test_x);

    // Task 0..=8: one classical classifier each; task 9: the HMM
    // sequence baseline. Classifiers are constructed inside the task so
    // each worker owns its state outright.
    const N_BASELINES: usize = 10;
    m2ai_par::parallel_map(N_BASELINES, n_threads, |i| {
        if i < 9 {
            let mut clf: Box<dyn Classifier> = match i {
                0 => Box::new(KNearestNeighbors::new(5)),
                1 => Box::new(LinearSvm::new()),
                2 => Box::new(RbfSvm::new(0.02)),
                3 => Box::new(GaussianProcess::new(0.02, 1e-2)),
                4 => Box::new(DecisionTree::new(8)),
                5 => Box::new(RandomForest::new(40, 8)),
                6 => Box::new(AdaBoost::new(30, 3)),
                7 => Box::new(GaussianNaiveBayes::new()),
                _ => Box::new(Qda::new(0.3)),
            };
            let acc = match clf.fit(&train_x, &train_y) {
                Ok(()) => {
                    let hits = test_x
                        .iter()
                        .zip(&test_y)
                        .filter(|(x, y)| clf.predict(x) == **y)
                        .count();
                    hits as f64 / test_x.len().max(1) as f64
                }
                Err(_) => 0.0,
            };
            (clf.name().to_string(), acc)
        } else {
            // HMM on the pooled frame sequences.
            let hmm_train: Vec<(Vec<Vec<f32>>, usize)> = train
                .iter()
                .map(|(f, y)| (sequence_for_hmm(f, &layout), *y))
                .collect();
            let hmm_acc = match HmmClassifier::fit(&hmm_train, 3, 5) {
                Ok(clf) => {
                    let hits = test
                        .iter()
                        .filter(|(f, y)| clf.predict(&sequence_for_hmm(f, &layout)) == *y)
                        .count();
                    hits as f64 / test.len().max(1) as f64
                }
                Err(_) => 0.0,
            };
            ("HMM (FEMO-style)".to_string(), hmm_acc)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, ExperimentConfig};

    fn tiny_bundle() -> DatasetBundle {
        let config = ExperimentConfig {
            samples_per_class: 3,
            frames_per_sample: 6,
            calibrate: false,
            ..ExperimentConfig::paper_default()
        };
        generate_dataset(&config)
    }

    #[test]
    fn train_m2ai_beats_chance_quickly() {
        let bundle = tiny_bundle();
        let opts = TrainOptions {
            epochs: 12,
            n_threads: 4,
            ..TrainOptions::fast()
        };
        let outcome = train_m2ai(&bundle, &opts);
        // 12 classes ⇒ chance is ~8.3 %; training accuracy must be
        // clearly above it after a few epochs.
        assert!(
            outcome.train_accuracy > 0.25,
            "train accuracy {}",
            outcome.train_accuracy
        );
        assert!(outcome.report.epoch_losses.len() == 12);
        assert_eq!(outcome.confusion.n_classes(), 12);
    }

    #[test]
    fn baselines_produce_one_score_each() {
        let bundle = tiny_bundle();
        let results = evaluate_baselines(&bundle, 0.25, 3, 2);
        assert_eq!(results.len(), 10);
        let names: std::collections::HashSet<&str> =
            results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names.len(), 10, "duplicate baseline names");
        for (name, acc) in &results {
            assert!((0.0..=1.0).contains(acc), "{name}: {acc}");
        }
    }

    #[test]
    fn options_presets_differ() {
        assert!(TrainOptions::paper_default().epochs > TrainOptions::fast().epochs);
    }
}
