//! Network assembly (Fig. 6) and the Fig. 17 architecture ablations.

use crate::frames::FrameLayout;
use m2ai_nn::layers::{Layer, Sequential, TwoBranchEncoder};
use m2ai_nn::lstm::LstmStack;
use m2ai_nn::model::SequenceClassifier;

/// Which engine architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// Full M²AI: CNN encoder → 2×32-cell LSTM → softmax.
    CnnLstm,
    /// CNN encoder with a per-frame softmax (no temporal memory).
    CnnOnly,
    /// Raw frames straight into the LSTM (no spatial feature
    /// extraction).
    LstmOnly,
}

impl Architecture {
    /// Display label used in the Fig. 17 table.
    pub fn label(self) -> &'static str {
        match self {
            Architecture::CnnLstm => "CNN+LSTM (M2AI)",
            Architecture::CnnOnly => "CNN only",
            Architecture::LstmOnly => "LSTM only",
        }
    }
}

/// Width of the merged per-frame representation.
const MERGE_DIM: usize = 64;
/// LSTM stack layout from the paper: two layers of 32 memory cells.
const LSTM_CELLS: [usize; 2] = [32, 32];

/// Builds the convolutional branch over the pseudospectrum part
/// (tags as channels over 180 angle bins — the CONV-E stack).
fn conv_branch(n_tags: usize, n_angles: usize, seed: u64) -> (Sequential, usize) {
    // CONV-E1/E2/E3 analogues with progressively shrinking extent.
    let c1_out = 12;
    let c2_out = 16;
    let c3_out = 16;
    let l1 = (n_angles - 7) / 3 + 1;
    let l2 = (l1 - 5) / 2 + 1;
    let l3 = (l2 - 3) / 2 + 1;
    let seq = Sequential::new(vec![
        Layer::conv1d(n_tags, n_angles, c1_out, 7, 3, seed),
        Layer::relu(),
        Layer::conv1d(c1_out, l1, c2_out, 5, 2, seed ^ 0x11),
        Layer::relu(),
        Layer::conv1d(c2_out, l2, c3_out, 3, 2, seed ^ 0x22),
        Layer::relu(),
    ]);
    (seq, c3_out * l3)
}

/// Builds the per-frame encoder appropriate for the layout: a
/// two-branch CNN+merge when a spectrum part exists, a small dense
/// encoder otherwise (Fig. 16's degraded inputs have no angle axis).
fn build_encoder(layout: &FrameLayout, seed: u64) -> (m2ai_nn::model::Encoder, usize) {
    let spec = layout.spectrum_dim();
    let direct = layout.direct_dim();
    if spec > 0 {
        let (branch, feat) = conv_branch(layout.n_tags, layout.n_angles, seed);
        let merge = Sequential::new(vec![
            Layer::dense(feat + direct, MERGE_DIM, seed ^ 0x33),
            Layer::relu(),
        ]);
        (TwoBranchEncoder::new(spec, branch, merge).into(), MERGE_DIM)
    } else {
        let seq = Sequential::new(vec![
            Layer::dense(direct, MERGE_DIM, seed ^ 0x44),
            Layer::relu(),
        ]);
        (seq.into(), MERGE_DIM)
    }
}

/// Builds the classifier for a frame layout and architecture.
///
/// # Panics
///
/// Panics if the layout has zero total dimension.
pub fn build_model(
    layout: &FrameLayout,
    n_classes: usize,
    architecture: Architecture,
    seed: u64,
) -> SequenceClassifier {
    assert!(layout.frame_dim() > 0, "layout has no features");
    match architecture {
        Architecture::CnnLstm => {
            let (encoder, feat) = build_encoder(layout, seed);
            SequenceClassifier::new(
                encoder,
                LstmStack::new(feat, &LSTM_CELLS, seed),
                n_classes,
                seed,
            )
        }
        Architecture::CnnOnly => {
            let (encoder, feat) = build_encoder(layout, seed);
            SequenceClassifier::without_lstm(encoder, feat, n_classes, seed)
        }
        Architecture::LstmOnly => SequenceClassifier::new(
            Sequential::default(),
            LstmStack::new(layout.frame_dim(), &LSTM_CELLS, seed),
            n_classes,
            seed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::FeatureMode;

    fn frame(dim: usize, fill: f32) -> Vec<f32> {
        vec![fill; dim]
    }

    #[test]
    fn all_architectures_run_forward() {
        let layout = FrameLayout::new(6, 4, FeatureMode::Joint);
        for arch in [
            Architecture::CnnLstm,
            Architecture::CnnOnly,
            Architecture::LstmOnly,
        ] {
            let model = build_model(&layout, 12, arch, 1);
            let frames = vec![frame(layout.frame_dim(), 0.1); 3];
            let p = model.predict_proba(&frames);
            assert_eq!(p.len(), 12, "{arch:?}");
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn degraded_modes_get_dense_encoders() {
        for mode in [
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ] {
            let layout = FrameLayout::new(6, 4, mode);
            let model = build_model(&layout, 12, Architecture::CnnLstm, 2);
            let frames = vec![frame(layout.frame_dim(), 0.2); 2];
            assert!(model.predict(&frames) < 12, "{mode:?}");
        }
    }

    #[test]
    fn music_only_keeps_conv_branch() {
        let layout = FrameLayout::new(3, 4, FeatureMode::MusicOnly);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 3);
        let frames = vec![frame(layout.frame_dim(), 0.05); 2];
        assert!(model.predict(&frames) < 12);
    }

    #[test]
    fn backward_runs_on_full_model() {
        use m2ai_nn::Parameterized;
        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let mut model = build_model(&layout, 12, Architecture::CnnLstm, 4);
        let frames = vec![frame(layout.frame_dim(), 0.3); 4];
        model.zero_grad();
        let loss = model.loss_and_backprop(&frames, 5);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(model.grad_norm() > 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            Architecture::CnnLstm,
            Architecture::CnnOnly,
            Architecture::LstmOnly,
        ]
        .iter()
        .map(|a| a.label())
        .collect();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn antenna_count_changes_direct_dim_not_conv() {
        let l2 = FrameLayout::new(6, 2, FeatureMode::Joint);
        let l4 = FrameLayout::new(6, 4, FeatureMode::Joint);
        let m2 = build_model(&l2, 12, Architecture::CnnLstm, 5);
        let m4 = build_model(&l4, 12, Architecture::CnnLstm, 5);
        assert!(m2.predict(&vec![frame(l2.frame_dim(), 0.1); 2]) < 12);
        assert!(m4.predict(&vec![frame(l4.frame_dim(), 0.1); 2]) < 12);
    }
}
