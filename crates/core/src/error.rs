//! Typed errors for data-dependent failures in the pipeline.
//!
//! Config validation stays `assert!`-style (programmer errors);
//! anything a degraded reading stream can cause — empty windows, NaN
//! inputs, a diverged model — is an [`Error`] so streaming callers can
//! degrade gracefully instead of crashing.

/// A data-dependent failure in the core pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A window/interval contained no usable readings.
    EmptyWindow,
    /// An input carried a non-finite value where one is required.
    NonFiniteInput {
        /// Which input was non-finite.
        context: &'static str,
    },
    /// The underlying model failed.
    Nn(m2ai_nn::error::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptyWindow => write!(f, "no usable readings in the window"),
            Error::NonFiniteInput { context } => write!(f, "non-finite input: {context}"),
            Error::Nn(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<m2ai_nn::error::Error> for Error {
    fn from(e: m2ai_nn::error::Error) -> Error {
        Error::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(Error::EmptyWindow.to_string().contains("window"));
        let e = Error::NonFiniteInput { context: "t0" };
        assert!(e.to_string().contains("t0"));
        let n: Error = m2ai_nn::error::Error::EmptySequence.into();
        assert!(n.to_string().contains("model error"));
    }
}
