//! # m2ai-core — the M²AI activity-identification pipeline
//!
//! Ties the substrates together into the system of the paper (Fig. 1):
//!
//! 1. **[`calibration`]** — learn per-channel phase offsets from a
//!    stationary interval and map every reading onto the common
//!    910.25 MHz channel (Eq. 1, Fig. 3/10);
//! 2. **[`frames`]** — build the two spectrum-frame inputs per time
//!    window: the `n_tags × 180` MUSIC pseudospectrum frame and the
//!    `n_tags × n_antennas` periodogram frame (Fig. 5), plus the four
//!    ablation feature modes of Fig. 16;
//! 3. **[`dataset`]** — drive the simulated reader over activity scenes
//!    to produce labelled frame-sequence datasets, with every
//!    experimental knob of Section VI (rooms, persons, tags, antennas,
//!    distance, calibration on/off);
//! 4. **[`network`]** — assemble the CNN+LSTM engine (Fig. 6) and its
//!    CNN-only / LSTM-only ablations (Fig. 17);
//! 5. **[`pipeline`]** — train/evaluate end to end, produce accuracies
//!    and the Table-I confusion matrix, and run every classical
//!    baseline on the same data (Fig. 9);
//! 6. **[`online`]** — a streaming identifier for the realtime
//!    deployment mode (Section V), with a Healthy/Degraded/Stale
//!    health state machine for faulty streams;
//! 7. **[`degrade`]** + **[`error`]** — the graceful-degradation layer:
//!    last-good-spectrum fallback with exponential decay, per-tag
//!    coverage masks, and typed errors for data-dependent failures.
//!
//! # Example
//!
//! ```no_run
//! use m2ai_core::dataset::{generate_dataset, ExperimentConfig};
//! use m2ai_core::pipeline::{train_m2ai, TrainOptions};
//!
//! let mut config = ExperimentConfig::paper_default();
//! config.samples_per_class = 6; // keep the example fast
//! let bundle = generate_dataset(&config);
//! let outcome = train_m2ai(&bundle, &TrainOptions::fast());
//! println!("accuracy: {:.1}%", 100.0 * outcome.test_accuracy);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod dataset;
pub mod degrade;
pub mod error;
pub mod frames;
pub mod network;
pub mod online;
pub mod pipeline;
pub mod serve;
pub mod stream_extract;

pub use dataset::{generate_dataset, DatasetBundle, ExperimentConfig};
pub use degrade::SpectrumFallback;
pub use error::Error;
pub use frames::{FeatureMode, FrameLayout, FrameQuality};
pub use network::Architecture;
pub use online::{
    HealthConfig, HealthState, OnlineIdentifier, OnlinePrediction, SessionWindow, WindowEvent,
};
pub use pipeline::{train_m2ai, TrainOptions, TrainOutcome};
pub use serve::{ServeConfig, ServeEngine, ServeError, ServePrediction, SessionId};
