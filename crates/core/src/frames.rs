//! Spectrum-frame construction (Section IV-A, Fig. 5).
//!
//! A *frame* summarises one time window of reads. The full M²AI input
//! concatenates, per window:
//!
//! * the **pseudospectrum frame** — per tag, a 180-bin MUSIC angle
//!   spectrum computed from per-round array snapshots;
//! * the **periodogram frame** — per tag, one power value per antenna.
//!
//! ## The π-ambiguity and phase doubling
//!
//! The R420 reports `φ` or `φ + π` per link. Doubling every calibrated
//! phase (`z = A·e^{i·2φ}`) erases the ambiguity (`e^{i2(φ+π)} =
//! e^{i2φ}`) at the cost of doubling the effective array spacing —
//! which is exactly why the paper spaces antennas at λ/8: after the
//! backscatter round trip (×2) and the ambiguity doubling (×2) the
//! effective spacing is λ/2, the classic unambiguous limit.
//!
//! Four degraded feature modes reproduce the Fig. 16 ablation.

use crate::calibration::PhaseCalibrator;
use crate::error::Error;
use m2ai_dsp::music::{pseudospectrum, MusicConfig, SourceCount};
use m2ai_dsp::Complex;
use m2ai_par::parallel_map;
use m2ai_rfsim::reading::TagReading;

/// Per-stage extraction latency histograms (calibration snapshot
/// gathering, MUSIC pseudospectrum, periodogram), registered lazily per
/// stage label.
static STAGE_SECONDS: m2ai_obs::HistogramFamily = m2ai_obs::HistogramFamily::new(
    "m2ai_extract_stage_seconds",
    "feature-extraction stage wall time",
    "stage",
    m2ai_obs::latency_buckets,
);

pub(crate) fn stage_seconds(stage: &'static str) -> m2ai_obs::Histogram {
    STAGE_SECONDS.with(stage)
}

/// Turns a raw (linear-power) MUSIC pseudospectrum into the frame's
/// spectrum features: peak-normalise, then log-compress into [0, 1]
/// (30 dB floor), then smooth over ±2° so the conv encoder sees stable,
/// slightly-translated structure instead of 1-bin spikes (MUSIC peaks
/// are needle-sharp).
///
/// Exactly the arithmetic `tag_features` always applied, factored out so
/// the streaming extractor produces bit-identical features from the same
/// spectrum. Writes `min(power.len(), out.len())` values into `out`.
pub(crate) fn spectrum_feature_into(power: &[f64], out: &mut [f32]) {
    // MusicSpectrum::normalized, fused: scale so the max is 1.
    let max = power.iter().cloned().fold(f64::MIN, f64::max);
    let scale = if max > 0.0 { 1.0 / max } else { 0.0 };
    let compressed: Vec<f32> = power
        .iter()
        .map(|&p| (((p * scale).max(1e-3).log10() / 3.0) + 1.0) as f32)
        .collect();
    smooth_spectrum_into(&compressed, out);
}

/// The ±2° circular smoothing shared by the exact and approximate
/// log-compression paths (one body, so the two can never drift apart).
pub(crate) fn smooth_spectrum_into(compressed: &[f32], out: &mut [f32]) {
    let n = compressed.len();
    const K: [f32; 9] = [0.03, 0.06, 0.12, 0.18, 0.22, 0.18, 0.12, 0.06, 0.03];
    if n < 9 {
        for (i, sp) in out.iter_mut().take(n).enumerate() {
            let mut acc = 0.0;
            for (o, w) in K.iter().enumerate() {
                let idx = (i + o + n - 4) % n;
                acc += w * compressed[idx];
            }
            *sp = acc;
        }
        return;
    }
    // Interior bins never wrap: their taps are the contiguous slice
    // `compressed[i-4 ..= i+4]`, so index them directly — the modular
    // form costs an integer division per tap, which dominates the whole
    // feature compression. Accumulation order matches the modular loop
    // tap for tap, so the result is bit-identical.
    for (i, sp) in out.iter_mut().enumerate().take(n - 4).skip(4) {
        let win = &compressed[i - 4..i + 5];
        let mut acc = 0.0;
        for (w, &c) in K.iter().zip(win) {
            acc += w * c;
        }
        *sp = acc;
    }
    // The first and last four bins wrap around the circular grid.
    for i in (0..4).chain(n - 4..n) {
        let mut acc = 0.0;
        for (o, w) in K.iter().enumerate() {
            let idx = (i + o + n - 4) % n;
            acc += w * compressed[idx];
        }
        out[i] = acc;
    }
}

/// Maps a mean backscatter power to the frame's direct feature: an
/// absolute log scale anchored at −80 dB, clamped to [0, 1.5]. Shared
/// (bit-identically) by the batch and streaming periodogram paths.
pub(crate) fn periodogram_feature(p: f64) -> f32 {
    let db = 10.0 * (p + 1e-12).log10();
    (((db + 80.0) / 60.0).clamp(0.0, 1.5)) as f32
}

/// Which preprocessing feeds the network (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureMode {
    /// Pseudospectrum + periodogram (full M²AI).
    Joint,
    /// MUSIC pseudospectrum only.
    MusicOnly,
    /// Periodogram (FFT power) only.
    PeriodogramOnly,
    /// Raw calibrated per-antenna phases (cos/sin encoded).
    PhaseOnly,
    /// Raw per-antenna RSSI means.
    RssiOnly,
}

impl FeatureMode {
    /// Display label used in the Fig. 16 table.
    pub fn label(self) -> &'static str {
        match self {
            FeatureMode::Joint => "M2AI (joint)",
            FeatureMode::MusicOnly => "MUSIC-based",
            FeatureMode::PeriodogramOnly => "FFT-based",
            FeatureMode::PhaseOnly => "Phase-based",
            FeatureMode::RssiOnly => "RSSI-based",
        }
    }
}

/// Dimensions of one feature frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLayout {
    /// Tags in the scene (`n` in the paper's `n × 180`).
    pub n_tags: usize,
    /// Antenna ports (`N`).
    pub n_antennas: usize,
    /// Angle bins of the pseudospectrum (paper: 180).
    pub n_angles: usize,
    /// Active feature mode.
    pub mode: FeatureMode,
}

impl FrameLayout {
    /// Layout for the paper's default configuration.
    pub fn new(n_tags: usize, n_antennas: usize, mode: FeatureMode) -> Self {
        FrameLayout {
            n_tags,
            n_antennas,
            n_angles: 180,
            mode,
        }
    }

    /// Length of the conv-branch (spectrum) part of a frame.
    pub fn spectrum_dim(&self) -> usize {
        match self.mode {
            FeatureMode::Joint | FeatureMode::MusicOnly => self.n_tags * self.n_angles,
            _ => 0,
        }
    }

    /// Length of the directly-merged part of a frame.
    pub fn direct_dim(&self) -> usize {
        match self.mode {
            FeatureMode::Joint | FeatureMode::PeriodogramOnly | FeatureMode::RssiOnly => {
                self.n_tags * self.n_antennas
            }
            FeatureMode::MusicOnly => 0,
            FeatureMode::PhaseOnly => self.n_tags * self.n_antennas * 2,
        }
    }

    /// Total frame length.
    pub fn frame_dim(&self) -> usize {
        self.spectrum_dim() + self.direct_dim()
    }
}

/// Per-tag input quality of one built frame.
///
/// Coverage measures how much of the window's expected snapshot supply
/// actually arrived for each tag — the per-tag *coverage mask* of the
/// degradation contract. `0.0` means the tag was invisible for the
/// whole window (its frame region is all zeros), `1.0` that every
/// antenna round produced a usable snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameQuality {
    /// Fraction of expected per-round snapshots observed, per tag, in
    /// `[0, 1]`.
    pub tag_coverage: Vec<f32>,
}

impl FrameQuality {
    /// Mean coverage over all tags.
    pub fn mean_coverage(&self) -> f32 {
        if self.tag_coverage.is_empty() {
            return 0.0;
        }
        self.tag_coverage.iter().sum::<f32>() / self.tag_coverage.len() as f32
    }

    /// Tags with zero coverage (completely unseen this window).
    pub fn missing_tags(&self) -> Vec<usize> {
        self.tag_coverage
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Builds feature frames from calibrated reader output.
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    /// Frame geometry and mode.
    pub layout: FrameLayout,
    /// Calibration to apply to every phase.
    pub calibrator: PhaseCalibrator,
    /// Window length of one frame in seconds.
    pub frame_duration_s: f64,
    /// Duration of one antenna round (`n_antennas × 25 ms`).
    pub round_duration_s: f64,
    /// Physical antenna spacing in wavelengths (λ/8 ⇒ 0.125).
    pub spacing_wavelengths: f64,
    /// Worker threads for frame construction (0 = all cores, 1 =
    /// serial). Output is bit-identical for every setting: per-tag and
    /// per-frame work is index-pure.
    pub parallelism: usize,
}

impl FrameBuilder {
    /// Creates a builder with the paper's timing (25 ms slots).
    pub fn new(layout: FrameLayout, calibrator: PhaseCalibrator, frame_duration_s: f64) -> Self {
        FrameBuilder {
            layout,
            calibrator,
            frame_duration_s,
            round_duration_s: layout.n_antennas as f64 * 0.025,
            spacing_wavelengths: 0.125,
            parallelism: 1,
        }
    }

    /// Sets the worker-thread count (builder style). `0` = all cores.
    #[must_use]
    pub fn with_parallelism(mut self, n_threads: usize) -> Self {
        self.parallelism = n_threads;
        self
    }

    /// MUSIC configuration implied by the layout (see the module docs
    /// for why the spacing doubles).
    pub fn music_config(&self) -> MusicConfig {
        let n = self.layout.n_antennas;
        MusicConfig {
            n_antennas: n,
            // Phase doubling ⇒ effective spacing 2d; the dsp layer then
            // applies the round-trip ×2 itself.
            spacing_wavelengths: 2.0 * self.spacing_wavelengths,
            round_trip: true,
            n_angles: self.layout.n_angles,
            forward_backward: true,
            smoothing_subarray: if n >= 4 { Some(3) } else { None },
            source_count: SourceCount::Mdl,
            diagonal_loading: 1e-6,
        }
    }

    /// Per-round array snapshots for one tag within `[t0, t0+frame)`.
    ///
    /// A round contributes a snapshot only if every antenna read the
    /// tag in that round. Phases are calibrated and doubled.
    fn snapshots(&self, readings: &[TagReading], tag: usize, t0: f64) -> Vec<Vec<Complex>> {
        let _span = stage_seconds("calibration").time();
        let n_ant = self.layout.n_antennas;
        let t1 = t0 + self.frame_duration_s;
        let mut per_round: std::collections::BTreeMap<i64, Vec<Option<Complex>>> =
            std::collections::BTreeMap::new();
        for r in readings {
            if r.tag.0 != tag || r.time_s < t0 || r.time_s >= t1 || r.antenna >= n_ant {
                continue;
            }
            // Corrupted reports (NaN/Inf phase or RSSI) carry no usable
            // signal: treat them as missed reads.
            if !r.time_s.is_finite() || !r.phase_rad.is_finite() || !r.rssi_dbm.is_finite() {
                continue;
            }
            let round = (r.time_s / self.round_duration_s).floor() as i64;
            let slot = per_round.entry(round).or_insert_with(|| vec![None; n_ant]);
            let phase = self.calibrator.calibrate(r);
            let amp = 10f64.powf(r.rssi_dbm / 20.0);
            slot[r.antenna] = Some(Complex::from_polar(amp, 2.0 * phase));
        }
        per_round
            .into_values()
            .filter_map(|slots| slots.into_iter().collect::<Option<Vec<Complex>>>())
            .collect()
    }

    /// Spectrum and direct features of one tag within
    /// `[t0, t0 + frame_duration)`, plus the number of complete array
    /// snapshots that fed them — index-pure in `tag`, so frame
    /// construction can fan tags out across workers without changing a
    /// single bit of the output.
    fn tag_features(
        &self,
        readings: &[TagReading],
        tag: usize,
        t0: f64,
        music_cfg: &MusicConfig,
    ) -> (Vec<f32>, Vec<f32>, usize) {
        let lay = self.layout;
        let t1 = t0 + self.frame_duration_s;
        let has_spectrum = matches!(lay.mode, FeatureMode::Joint | FeatureMode::MusicOnly);
        let mut spec_part = vec![0.0f32; if has_spectrum { lay.n_angles } else { 0 }];
        let direct_per_tag = lay.direct_dim() / lay.n_tags.max(1);
        let mut direct_part = vec![0.0f32; direct_per_tag];

        let snaps = self.snapshots(readings, tag, t0);
        // Pseudospectrum part.
        if has_spectrum && snaps.len() >= 2 {
            let _span = stage_seconds("music").time();
            if let Ok(spec) = pseudospectrum(&snaps, music_cfg) {
                spectrum_feature_into(&spec.power, &mut spec_part);
            }
        }
        // Direct part.
        match lay.mode {
            FeatureMode::Joint | FeatureMode::PeriodogramOnly => {
                // Mean backscatter power per antenna (Parseval ⇒
                // the mean of the periodogram bins), on an absolute
                // log scale so the temporal power waveform of
                // radial gestures (squat/raise/push) stays visible
                // across frames.
                let _span = stage_seconds("periodogram").time();
                for a in 0..lay.n_antennas {
                    let series: Vec<Complex> = snaps.iter().map(|s| s[a]).collect();
                    if series.is_empty() {
                        continue;
                    }
                    let p = m2ai_dsp::periodogram::mean_power(&series);
                    direct_part[a] = periodogram_feature(p);
                }
            }
            FeatureMode::RssiOnly => {
                let mut sums = vec![0.0f64; lay.n_antennas];
                let mut counts = vec![0usize; lay.n_antennas];
                for r in readings {
                    if r.tag.0 == tag
                        && r.time_s >= t0
                        && r.time_s < t1
                        && r.antenna < lay.n_antennas
                        && r.rssi_dbm.is_finite()
                    {
                        sums[r.antenna] += r.rssi_dbm;
                        counts[r.antenna] += 1;
                    }
                }
                for a in 0..lay.n_antennas {
                    if counts[a] > 0 {
                        // Scale dBm into a small numeric range.
                        direct_part[a] = ((sums[a] / counts[a] as f64) / 20.0) as f32;
                    }
                }
            }
            FeatureMode::PhaseOnly => {
                let mut sums = vec![Complex::ZERO; lay.n_antennas];
                for r in readings {
                    if r.tag.0 == tag
                        && r.time_s >= t0
                        && r.time_s < t1
                        && r.antenna < lay.n_antennas
                        && r.phase_rad.is_finite()
                    {
                        let phase = self.calibrator.calibrate(r);
                        sums[r.antenna] += Complex::cis(2.0 * phase);
                    }
                }
                for a in 0..lay.n_antennas {
                    let m = sums[a];
                    if m.norm() > 0.0 {
                        let u = m.scale(1.0 / m.norm());
                        direct_part[a * 2] = u.re as f32;
                        direct_part[a * 2 + 1] = u.im as f32;
                    }
                }
            }
            FeatureMode::MusicOnly => {}
        }
        let n_snaps = snaps.len();
        (spec_part, direct_part, n_snaps)
    }

    /// Builds the frame covering `[t0, t0 + frame_duration)`.
    ///
    /// Tags unseen in the window contribute zeros (as an undetected tag
    /// would on real hardware). With [`FrameBuilder::parallelism`] > 1
    /// the per-tag pseudospectra are computed on a worker pool; the
    /// result is bit-identical to the serial computation.
    pub fn build_frame(&self, readings: &[TagReading], t0: f64) -> Vec<f32> {
        self.build_frame_with(readings, t0, self.parallelism)
    }

    /// Like [`FrameBuilder::build_frame`], but also reports per-tag
    /// input [`FrameQuality`] so streaming callers can gate on
    /// coverage. The frame itself is bit-identical to `build_frame`'s.
    pub fn build_frame_with_quality(
        &self,
        readings: &[TagReading],
        t0: f64,
    ) -> (Vec<f32>, FrameQuality) {
        self.frame_and_quality(readings, t0, self.parallelism)
    }

    /// Fallible frame construction: rejects non-finite window starts
    /// (data-dependent — e.g. a timestamp from a corrupted report)
    /// instead of silently building an empty frame.
    pub fn try_build_frame(&self, readings: &[TagReading], t0: f64) -> Result<Vec<f32>, Error> {
        if !t0.is_finite() {
            return Err(Error::NonFiniteInput {
                context: "window start t0",
            });
        }
        Ok(self.build_frame(readings, t0))
    }

    fn build_frame_with(&self, readings: &[TagReading], t0: f64, threads: usize) -> Vec<f32> {
        self.frame_and_quality(readings, t0, threads).0
    }

    fn frame_and_quality(
        &self,
        readings: &[TagReading],
        t0: f64,
        threads: usize,
    ) -> (Vec<f32>, FrameQuality) {
        let lay = self.layout;
        let music_cfg = self.music_config();
        let parts = parallel_map(lay.n_tags, threads, |tag| {
            self.tag_features(readings, tag, t0, &music_cfg)
        });
        let mut frame = Vec::with_capacity(lay.frame_dim());
        for (spec_part, _, _) in &parts {
            frame.extend_from_slice(spec_part);
        }
        for (_, direct_part, _) in &parts {
            frame.extend_from_slice(direct_part);
        }
        // Degradation contract: an emitted frame never carries NaN/Inf,
        // whatever the inputs did. Clean frames are already finite, so
        // this pass is a bit-exact no-op on them.
        for v in &mut frame {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
        let expected_rounds = (self.frame_duration_s / self.round_duration_s)
            .round()
            .max(1.0);
        let tag_coverage = parts
            .iter()
            .map(|(_, _, n_snaps)| ((*n_snaps as f64 / expected_rounds) as f32).clamp(0.0, 1.0))
            .collect();
        (frame, FrameQuality { tag_coverage })
    }

    /// Builds a `T`-frame sample starting at `start_s`.
    ///
    /// With [`FrameBuilder::parallelism`] > 1 the frames fan out across
    /// workers (one whole frame per task — the outer level parallelises,
    /// the per-tag level inside each frame stays serial to avoid
    /// oversubscription); the output is bit-identical either way.
    pub fn build_sample(
        &self,
        readings: &[TagReading],
        start_s: f64,
        n_frames: usize,
    ) -> Vec<Vec<f32>> {
        parallel_map(n_frames, self.parallelism, |k| {
            self.build_frame_with(readings, start_s + k as f64 * self.frame_duration_s, 1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    fn clean_reader_config() -> ReaderConfig {
        ReaderConfig {
            hopping_offsets: false,
            phase_noise_std: 0.01,
            rssi_noise_db: 0.1,
            pi_ambiguity: true,
            ..ReaderConfig::default()
        }
    }

    /// Room with essentially no multipath: very lossy walls.
    fn anechoic() -> Room {
        Room::rectangular("anechoic", 10.0, 8.0, 60.0)
    }

    #[test]
    fn layout_dimensions() {
        let l = FrameLayout::new(6, 4, FeatureMode::Joint);
        assert_eq!(l.spectrum_dim(), 1080);
        assert_eq!(l.direct_dim(), 24);
        assert_eq!(l.frame_dim(), 1104);
        assert_eq!(
            FrameLayout::new(6, 4, FeatureMode::MusicOnly).frame_dim(),
            1080
        );
        assert_eq!(
            FrameLayout::new(6, 4, FeatureMode::PeriodogramOnly).frame_dim(),
            24
        );
        assert_eq!(
            FrameLayout::new(6, 4, FeatureMode::PhaseOnly).frame_dim(),
            48
        );
        assert_eq!(
            FrameLayout::new(6, 4, FeatureMode::RssiOnly).frame_dim(),
            24
        );
    }

    #[test]
    fn frame_has_expected_shape_and_range() {
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 4.0)]);
        let readings = reader.run(|_| scene.clone(), 1.0);
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let cal = PhaseCalibrator::disabled(1, 4);
        let fb = FrameBuilder::new(layout, cal, 0.5);
        let frame = fb.build_frame(&readings, 0.0);
        assert_eq!(frame.len(), layout.frame_dim());
        assert!(frame.iter().all(|v| v.is_finite()));
        assert!(frame.iter().any(|&v| v > 0.0), "frame must not be empty");
        // Log-compressed + smoothed pseudospectrum peaks somewhere in
        // (0, 1]: the raw max of 1 is spread over the ±4° kernel.
        let max_spec = frame[..180].iter().cloned().fold(0.0f32, f32::max);
        assert!(max_spec > 0.15 && max_spec <= 1.0, "peak {max_spec}");
    }

    #[test]
    fn pseudospectrum_peak_near_true_angle() {
        // Tag broadside of the array: direct-path AoA is 90°.
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 4.3)]);
        let readings = reader.run(|_| scene.clone(), 2.0);
        let layout = FrameLayout::new(1, 4, FeatureMode::MusicOnly);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 2.0);
        let frame = fb.build_frame(&readings, 0.0);
        let peak = frame
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        assert!(
            (peak as f64 - 90.0).abs() < 12.0,
            "peak at {peak}°, expected ≈90°"
        );
    }

    #[test]
    fn empty_window_gives_zero_frame() {
        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
        let frame = fb.build_frame(&[], 0.0);
        assert_eq!(frame.len(), layout.frame_dim());
        assert!(frame.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sample_has_t_frames() {
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 3.0)]);
        let readings = reader.run(|_| scene.clone(), 3.0);
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let sample = fb.build_sample(&readings, 0.0, 6);
        assert_eq!(sample.len(), 6);
        assert!(sample.iter().all(|f| f.len() == layout.frame_dim()));
    }

    #[test]
    fn phase_doubling_erases_pi_flips() {
        // Two readers identical except for the π ambiguity must produce
        // (nearly) identical joint frames after doubling.
        let mut with_amb = clean_reader_config();
        with_amb.pi_ambiguity = true;
        let mut without = clean_reader_config();
        without.pi_ambiguity = false;
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.5, 3.5)]);
        let run = |cfg: ReaderConfig| {
            let mut reader = Reader::new(anechoic(), cfg, 1);
            reader.run(|_| scene.clone(), 2.0)
        };
        let layout = FrameLayout::new(1, 4, FeatureMode::MusicOnly);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 2.0);
        let fa = fb.build_frame(&run(with_amb), 0.0);
        let fs = fb.build_frame(&run(without), 0.0);
        let diff: f32 = fa.iter().zip(&fs).map(|(a, b)| (a - b).abs()).sum();
        let scale: f32 = fs.iter().map(|v| v.abs()).sum();
        assert!(diff / scale < 0.05, "relative diff {}", diff / scale);
    }

    #[test]
    fn all_modes_build_nonempty_frames() {
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 2);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.0, 3.0), Point2::new(6.0, 3.5)]);
        let readings = reader.run(|_| scene.clone(), 1.0);
        for mode in [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ] {
            let layout = FrameLayout::new(2, 4, mode);
            let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 1.0);
            let frame = fb.build_frame(&readings, 0.0);
            assert_eq!(frame.len(), layout.frame_dim(), "{mode:?}");
            assert!(
                frame.iter().any(|&v| v != 0.0),
                "{mode:?} produced an all-zero frame"
            );
        }
    }

    #[test]
    fn quality_tracks_coverage() {
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 2);
        // Tag 1 far outside read range: zero coverage expected.
        let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 3.0), Point2::new(50.0, 50.0)]);
        let readings = reader.run(|_| scene.clone(), 1.0);
        let layout = FrameLayout::new(2, 4, FeatureMode::Joint);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(2, 4), 0.5);
        let (frame, q) = fb.build_frame_with_quality(&readings, 0.0);
        assert_eq!(frame, fb.build_frame(&readings, 0.0));
        assert_eq!(q.tag_coverage.len(), 2);
        assert!(q.tag_coverage[0] > 0.5, "near tag: {:?}", q.tag_coverage);
        assert_eq!(q.tag_coverage[1], 0.0, "unreadable tag");
        assert_eq!(q.missing_tags(), vec![1]);
        assert!(q.mean_coverage() > 0.0 && q.mean_coverage() < 1.0);
    }

    #[test]
    fn nan_readings_never_reach_the_frame() {
        let mut reader = Reader::new(anechoic(), clean_reader_config(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(5.0, 3.0)]);
        let mut readings = reader.run(|_| scene.clone(), 1.0);
        for (i, r) in readings.iter_mut().enumerate() {
            match i % 3 {
                0 => r.phase_rad = f64::NAN,
                1 => r.rssi_dbm = f64::INFINITY,
                _ => {}
            }
        }
        for mode in [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ] {
            let layout = FrameLayout::new(1, 4, mode);
            let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
            let frame = fb.build_frame(&readings, 0.0);
            assert!(
                frame.iter().all(|v| v.is_finite()),
                "{mode:?} leaked a non-finite value"
            );
        }
    }

    #[test]
    fn try_build_frame_rejects_non_finite_t0() {
        let layout = FrameLayout::new(1, 4, FeatureMode::Joint);
        let fb = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        assert!(matches!(
            fb.try_build_frame(&[], f64::NAN),
            Err(crate::error::Error::NonFiniteInput { .. })
        ));
        assert!(fb.try_build_frame(&[], 0.0).is_ok());
    }

    #[test]
    fn mode_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = [
            FeatureMode::Joint,
            FeatureMode::MusicOnly,
            FeatureMode::PeriodogramOnly,
            FeatureMode::PhaseOnly,
            FeatureMode::RssiOnly,
        ]
        .iter()
        .map(|m| m.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
