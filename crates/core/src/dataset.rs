//! Labelled dataset generation: activity scenes → reader → frames.
//!
//! [`ExperimentConfig`] exposes every knob the paper's evaluation
//! sweeps: room (Fig. 12), number of simultaneous persons (Fig. 11),
//! tags per person (Fig. 15), antennas (Fig. 14), subject distance
//! (Fig. 13), calibration on/off (Fig. 10) and the preprocessing mode
//! (Fig. 16).

use crate::calibration::PhaseCalibrator;
use crate::frames::{FeatureMode, FrameBuilder, FrameLayout};
use m2ai_motion::activity::catalog;
use m2ai_motion::scene::ActivityScene;
use m2ai_motion::volunteer::Volunteer;
use m2ai_rfsim::fault::FaultPlan;
use m2ai_rfsim::geometry::{Point2, Vec2};
use m2ai_rfsim::reader::{Reader, ReaderConfig};
use m2ai_rfsim::room::Room;
use m2ai_rfsim::scene::SceneSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the paper's two environments to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoomKind {
    /// 13.75 × 10.50 m furnished lab — high multipath.
    Laboratory,
    /// 8.75 × 7.50 m empty hall — low multipath.
    Hall,
}

impl RoomKind {
    /// Instantiates the room model.
    pub fn build(self) -> Room {
        match self {
            RoomKind::Laboratory => Room::laboratory(),
            RoomKind::Hall => Room::hall(),
        }
    }
}

/// Full description of one experimental condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Environment.
    pub room: RoomKind,
    /// Simultaneously-acting persons (1–3).
    pub n_persons: usize,
    /// Tags per person (1–3: hand, arm, shoulder).
    pub tags_per_person: usize,
    /// Reader antenna ports (2–4).
    pub n_antennas: usize,
    /// Recorded samples per activity class.
    pub samples_per_class: usize,
    /// Frames per sample (`T`).
    pub frames_per_sample: usize,
    /// Frame window length in seconds.
    pub frame_duration_s: f64,
    /// Preprocessing mode.
    pub feature_mode: FeatureMode,
    /// Run the Eq. 1 phase calibration (Fig. 10 arm).
    pub calibrate: bool,
    /// Distance from the array to the scenario placement centre (m).
    pub distance_m: f64,
    /// Per-recording uniform jitter (±, metres) applied to the
    /// placement centre, so absolute position is not a class cue —
    /// volunteers never stand in exactly the same spot twice.
    pub placement_jitter_m: f64,
    /// Master seed (reader deployment + scene randomisation).
    pub seed: u64,
    /// Fault-injection plan applied to every *recording* run (the
    /// calibration interval stays clean — it models a supervised
    /// deployment step). [`FaultPlan::none`] (the default) leaves the
    /// dataset bit-identical to a fault-free build.
    pub faults: FaultPlan,
    /// Worker threads for dataset generation (0 = all cores, 1 =
    /// serial). Every sample's RNG is seeded from `(seed, class, k)`
    /// alone, so the generated dataset is bit-identical for every
    /// setting of this knob.
    pub n_threads: usize,
}

impl ExperimentConfig {
    /// The paper's default condition: laboratory, two persons, three
    /// tags each, four antennas, calibrated joint features.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            room: RoomKind::Laboratory,
            n_persons: 2,
            tags_per_person: 3,
            n_antennas: 4,
            samples_per_class: 20,
            frames_per_sample: 10,
            // 0.5 s frames deliberately span hop boundaries (400 ms
            // dwell): without Eq. 1 calibration the per-channel phase
            // rotations mix inside each correlation window and MUSIC
            // degrades — the Fig. 10 effect.
            frame_duration_s: 0.5,
            feature_mode: FeatureMode::Joint,
            calibrate: true,
            distance_m: 4.0,
            placement_jitter_m: 0.25,
            seed: 42,
            faults: FaultPlan::none(),
            n_threads: 0,
        }
    }

    /// Total tags in the scene.
    pub fn n_tags(&self) -> usize {
        self.n_persons * self.tags_per_person
    }

    /// Frame layout implied by this configuration.
    pub fn layout(&self) -> FrameLayout {
        FrameLayout::new(self.n_tags(), self.n_antennas, self.feature_mode)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on out-of-domain values.
    pub fn assert_valid(&self) {
        assert!((1..=3).contains(&self.n_persons), "n_persons must be 1..=3");
        assert!(
            (1..=3).contains(&self.tags_per_person),
            "tags_per_person must be 1..=3"
        );
        assert!(
            (2..=4).contains(&self.n_antennas),
            "n_antennas must be 2..=4"
        );
        assert!(self.samples_per_class > 0, "need samples");
        assert!(self.frames_per_sample > 0, "need frames");
        assert!(
            self.frame_duration_s > 0.0,
            "frame duration must be positive"
        );
        assert!(self.distance_m > 0.5, "subjects too close to the array");
        self.faults.assert_valid();
    }

    fn reader_config(&self, room: &Room) -> ReaderConfig {
        ReaderConfig {
            n_antennas: self.n_antennas,
            array_center: Point2::new(room.width / 2.0, 0.3),
            array_axis: Vec2::new(1.0, 0.0),
            seed: self.seed,
            ..ReaderConfig::default()
        }
    }

    fn placement(&self, room: &Room) -> Point2 {
        room.clamp_inside(Point2::new(room.width / 2.0, 0.3 + self.distance_m), 0.8)
    }
}

/// A generated dataset plus the metadata needed to build models on it.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Labelled samples: `(frame sequence, class index 0..12)`.
    pub samples: Vec<(Vec<Vec<f32>>, usize)>,
    /// Frame geometry.
    pub layout: FrameLayout,
    /// Number of activity classes (always 12).
    pub n_classes: usize,
    /// The configuration that produced this dataset.
    pub config: ExperimentConfig,
}

/// Number of activity classes in the catalogue.
pub const N_CLASSES: usize = 12;

/// Learns a calibrator from a stationary interval, as the paper's
/// deployment procedure prescribes (~1 hop cycle with still subjects).
pub fn learn_calibration(config: &ExperimentConfig) -> PhaseCalibrator {
    let room = config.room.build();
    let scenarios = catalog(config.n_persons);
    let volunteers: Vec<Volunteer> = (0..3).map(Volunteer::preset).collect();
    let scene = ActivityScene::with_placement(
        &scenarios[0],
        &volunteers,
        config.tags_per_person,
        config.seed,
        config.placement(&room),
    );
    // Freeze the scene at t = 0: stationary tags, no moving blockers.
    let frozen = SceneSnapshot {
        tag_positions: scene.snapshot(0.0).tag_positions,
        tag_velocities: Vec::new(),
        blockers: Vec::new(),
    };
    let mut reader = Reader::new(room.clone(), config.reader_config(&room), config.n_tags());
    // 21 s covers all 50 channels at the 400 ms dwell.
    let readings = reader.run(|_| frozen.clone(), 21.0);
    PhaseCalibrator::learn(&readings, config.n_tags(), config.n_antennas)
}

/// Generates the labelled dataset for one experimental condition.
///
/// Deterministic: the same configuration yields the same dataset,
/// **regardless of [`ExperimentConfig::n_threads`]** — every sample's
/// randomness derives from `(seed, class, k)` alone and samples are
/// assembled in index order, so the parallel fan-out is bit-identical
/// to the serial loop.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn generate_dataset(config: &ExperimentConfig) -> DatasetBundle {
    config.assert_valid();
    let room = config.room.build();
    let scenarios = catalog(config.n_persons);
    let layout = config.layout();
    let calibrator = if config.calibrate {
        learn_calibration(config)
    } else {
        PhaseCalibrator::disabled(config.n_tags(), config.n_antennas)
    };
    let builder = FrameBuilder::new(layout, calibrator, config.frame_duration_s);
    let duration = config.frames_per_sample as f64 * config.frame_duration_s + 0.2;

    // One task per (class, recording) pair, fanned out over the worker
    // pool. Each task seeds its own RNG from the indices, creates its
    // own reader, and shares only read-only state — index-pure by
    // construction.
    let n_items = N_CLASSES * config.samples_per_class;
    let samples = m2ai_par::parallel_map(n_items, config.n_threads, |idx| {
        let class_idx = idx / config.samples_per_class;
        let k = idx % config.samples_per_class;
        let scenario = &scenarios[class_idx];
        // Rotate through the volunteer pool per recording.
        let volunteers: Vec<Volunteer> = (0..3)
            .map(|p| Volunteer::preset(class_idx + k + p * 3))
            .collect();
        let scene_seed = config
            .seed
            .wrapping_mul(1_000_003)
            .wrapping_add((class_idx * 1009 + k) as u64);
        // Jitter the spot where this recording happens.
        let mut jrng = StdRng::seed_from_u64(scene_seed ^ 0x7A77);
        let j = config.placement_jitter_m;
        let base = config.placement(&room);
        let spot = room.clamp_inside(
            Point2::new(
                base.x + jrng.gen_range(-j..=j),
                base.y + jrng.gen_range(-j..=j),
            ),
            0.8,
        );
        let scene = ActivityScene::with_placement(
            scenario,
            &volunteers,
            config.tags_per_person,
            scene_seed,
            spot,
        );
        let mut reader = Reader::new(room.clone(), config.reader_config(&room), config.n_tags());
        reader.set_fault_plan(config.faults.clone());
        let readings = reader.run(|t| scene.snapshot(t), duration);
        let frames = builder.build_sample(&readings, 0.0, config.frames_per_sample);
        (frames, class_idx)
    });
    DatasetBundle {
        samples,
        layout,
        n_classes: N_CLASSES,
        config: config.clone(),
    }
}

/// Pools a frame down to a compact vector (per-tag 10°-binned spectrum
/// plus the direct features) — shared by the classical baselines.
pub fn pooled_frame(frame: &[f32], layout: &FrameLayout) -> Vec<f32> {
    let spec_dim = layout.spectrum_dim();
    let mut out = Vec::new();
    if spec_dim > 0 {
        let bins = 18; // 180° / 10°
        let per_bin = layout.n_angles / bins;
        for tag in 0..layout.n_tags {
            let base = tag * layout.n_angles;
            for b in 0..bins {
                let start = base + b * per_bin;
                let sum: f32 = frame[start..start + per_bin].iter().sum();
                out.push(sum / per_bin as f32);
            }
        }
    }
    out.extend_from_slice(&frame[spec_dim..]);
    out
}

/// Flattens a frame sequence into one fixed vector for the vector
/// baselines of Fig. 9: per-feature mean and standard deviation over
/// time (order-insensitive — by design these models lack temporal
/// memory, which is the paper's point).
pub fn flatten_for_classical(sample: &[Vec<f32>], layout: &FrameLayout) -> Vec<f32> {
    let pooled: Vec<Vec<f32>> = sample.iter().map(|f| pooled_frame(f, layout)).collect();
    let d = pooled.first().map(|p| p.len()).unwrap_or(0);
    let t = pooled.len().max(1) as f32;
    let mut mean = vec![0.0f32; d];
    for p in &pooled {
        for (m, v) in mean.iter_mut().zip(p) {
            *m += v / t;
        }
    }
    let mut std = vec![0.0f32; d];
    for p in &pooled {
        for (s, (v, m)) in std.iter_mut().zip(p.iter().zip(&mean)) {
            *s += (v - m) * (v - m) / t;
        }
    }
    std.iter_mut().for_each(|s| *s = s.sqrt());
    mean.extend_from_slice(&std);
    mean
}

/// Per-frame pooled sequence for the HMM baseline.
pub fn sequence_for_hmm(sample: &[Vec<f32>], layout: &FrameLayout) -> Vec<Vec<f32>> {
    sample.iter().map(|f| pooled_frame(f, layout)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            samples_per_class: 1,
            frames_per_sample: 4,
            calibrate: false, // skip the 21 s calibration run in unit tests
            ..ExperimentConfig::paper_default()
        }
    }

    #[test]
    fn dataset_shape_and_labels() {
        let config = tiny_config();
        let bundle = generate_dataset(&config);
        assert_eq!(bundle.samples.len(), 12);
        assert_eq!(bundle.n_classes, 12);
        for (i, (frames, label)) in bundle.samples.iter().enumerate() {
            assert_eq!(*label, i); // one sample per class, in order
            assert_eq!(frames.len(), 4);
            assert_eq!(frames[0].len(), bundle.layout.frame_dim());
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let config = tiny_config();
        let a = generate_dataset(&config);
        let b = generate_dataset(&config);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = tiny_config();
        let a = generate_dataset(&config);
        config.seed = 777;
        let b = generate_dataset(&config);
        assert_ne!(a.samples, b.samples);
    }

    #[test]
    fn frames_carry_signal() {
        let bundle = generate_dataset(&tiny_config());
        let nonzero = bundle
            .samples
            .iter()
            .flat_map(|(frames, _)| frames.iter())
            .filter(|f| f.iter().any(|&v| v != 0.0))
            .count();
        let total: usize = bundle.samples.iter().map(|(f, _)| f.len()).sum();
        assert!(
            nonzero * 10 >= total * 9,
            "too many empty frames: {nonzero}/{total}"
        );
    }

    #[test]
    fn classical_flattening_dims() {
        let config = tiny_config();
        let bundle = generate_dataset(&config);
        let layout = bundle.layout;
        let (frames, _) = &bundle.samples[0];
        let flat = flatten_for_classical(frames, &layout);
        // 6 tags × 18 bins + 24 direct = 132 pooled; ×2 (mean+std).
        assert_eq!(flat.len(), 264);
        assert!(flat.iter().all(|v| v.is_finite()));
        let seq = sequence_for_hmm(frames, &layout);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq[0].len(), 132);
    }

    #[test]
    fn config_validation_panics() {
        let mut bad = tiny_config();
        bad.n_antennas = 5;
        assert!(std::panic::catch_unwind(|| bad.assert_valid()).is_err());
        let mut bad2 = tiny_config();
        bad2.n_persons = 0;
        assert!(std::panic::catch_unwind(|| bad2.assert_valid()).is_err());
    }

    #[test]
    fn calibration_learns_from_stationary_interval() {
        let mut config = tiny_config();
        config.calibrate = true;
        let cal = learn_calibration(&config);
        assert!(cal.is_enabled());
    }

    #[test]
    fn none_faults_leave_dataset_bit_identical() {
        let config = tiny_config();
        let mut planned = tiny_config();
        planned.faults = FaultPlan::with_intensity(0.0, 99); // rate-0 plan
        assert_eq!(
            generate_dataset(&config).samples,
            generate_dataset(&planned).samples
        );
    }

    #[test]
    fn faulted_dataset_differs_but_stays_finite() {
        let mut config = tiny_config();
        config.faults = FaultPlan::with_intensity(0.6, 2026);
        let faulted = generate_dataset(&config);
        let clean = generate_dataset(&tiny_config());
        assert_ne!(clean.samples, faulted.samples);
        for (frames, _) in &faulted.samples {
            for f in frames {
                assert!(f.iter().all(|v| v.is_finite()), "faults leaked NaN/Inf");
            }
        }
    }

    #[test]
    fn room_kinds_build() {
        assert_eq!(RoomKind::Laboratory.build().name, "laboratory");
        assert_eq!(RoomKind::Hall.build().name, "hall");
    }
}
