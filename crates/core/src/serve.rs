//! Multi-session serving engine: incremental inference with
//! cross-session micro-batching.
//!
//! The paper's deployment mode (Section V) streams LLRP reads to a
//! backend identifying activities in realtime. [`OnlineIdentifier`]
//! serves exactly one stream and re-runs the whole CNN→LSTM window on
//! every new frame — O(T) redundant work per step. A [`ServeEngine`]
//! serves N streams from **one shared model** and advances each by
//! *state*, not replay:
//!
//! * **Incremental stepping** — each session carries a
//!   [`StreamState`] (persistent LSTM hidden/cell state plus a window
//!   ring of per-frame softmax outputs), so a new frame costs one
//!   encoder + LSTM step instead of a T-frame forward pass.
//! * **Cross-session micro-batching** — each [`ServeEngine::tick`]
//!   coalesces up to [`ServeConfig::max_batch`] ready sessions into
//!   one batched step: per-session hidden states stack row-wise and
//!   the LSTM/head matmuls run as `[B × ·]` GEMMs on `m2ai-kernels`
//!   instead of B skinny GEMVs.
//!
//! ## Numerical contract
//!
//! The kernels compute every output element as one accumulator chain,
//! row-independent, so a batched tick is **bit-identical** to the same
//! sessions ticked serially, in any slot order — and a fresh session's
//! first full window is bit-identical to [`OnlineIdentifier`]'s replay
//! of the same frames. After the first window the engine *keeps* LSTM
//! context across window boundaries instead of replaying from zero;
//! that divergence is the point (context retention is what the paper's
//! Fig. 17 ablation shows matters) and is documented in DESIGN.md.
//!
//! ## Flow control
//!
//! * **Admission** — at most [`ServeConfig::max_sessions`] concurrent
//!   sessions; [`ServeEngine::open_session`] fails with
//!   [`ServeError::SessionsFull`] beyond that.
//! * **Backpressure** — per-session pending-event queues are bounded
//!   by [`ServeConfig::queue_capacity`]; when a push overflows one,
//!   the *oldest* pending events are shed (freshest data wins in a
//!   realtime identifier) and the shed count is reported.
//! * **Degradation** — each session runs the same
//!   Healthy/Degraded/Stale machinery as [`OnlineIdentifier`] via its
//!   own [`SessionWindow`]; Stale windows reset the session's stream
//!   state, non-finite rows and low-confidence Degraded predictions
//!   are suppressed, never emitted.
//!
//! [`OnlineIdentifier`]: crate::online::OnlineIdentifier

use crate::frames::FrameBuilder;
use crate::online::{HealthConfig, HealthState, SessionWindow, WindowEvent};
use m2ai_kernels::KernelScratch;
use m2ai_nn::model::{SequenceClassifier, StreamState};
use m2ai_obs::trace::{self, SpanStatus, TraceContext};
use m2ai_rfsim::reading::TagReading;
use std::collections::VecDeque;
use std::fmt;

/// Process-wide serving instruments, registered once on first use.
struct ServeMetrics {
    /// Sum of pending window events across all open sessions.
    queue_depth: m2ai_obs::Gauge,
    /// Oldest-first backpressure sheds across all sessions.
    shed: m2ai_obs::Counter,
    /// Admission refusals by reason.
    sessions_full: m2ai_obs::Counter,
    /// Sessions advanced per non-empty tick.
    batch_size: m2ai_obs::Histogram,
    /// Wall time of each tick (including empty ones).
    tick_seconds: m2ai_obs::Histogram,
    /// Batched model-step wall time divided evenly over the rows of
    /// the batch.
    prediction_seconds: m2ai_obs::Histogram,
    /// Prediction outcomes: emitted vs the three suppression gates.
    emitted: m2ai_obs::Counter,
    suppressed_stale: m2ai_obs::Counter,
    suppressed_non_finite: m2ai_obs::Counter,
    suppressed_low_confidence: m2ai_obs::Counter,
}

fn serve_metrics() -> &'static ServeMetrics {
    static M: std::sync::OnceLock<ServeMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| {
        let outcome = |labels: &'static [(&'static str, &'static str)]| {
            m2ai_obs::counter(
                "m2ai_serve_predictions_total",
                "serve predictions by outcome",
                labels,
            )
        };
        ServeMetrics {
            queue_depth: m2ai_obs::gauge(
                "m2ai_serve_queue_depth",
                "pending window events across all open sessions",
                &[],
            ),
            shed: m2ai_obs::counter(
                "m2ai_serve_shed_total",
                "pending events shed (oldest first) by backpressure",
                &[],
            ),
            sessions_full: m2ai_obs::counter(
                "m2ai_serve_rejections_total",
                "admission refusals by reason",
                &[("reason", "sessions_full")],
            ),
            batch_size: m2ai_obs::histogram(
                "m2ai_serve_batch_size",
                "sessions advanced per non-empty tick",
                &[],
                &m2ai_obs::batch_buckets(),
            ),
            tick_seconds: m2ai_obs::histogram(
                "m2ai_serve_tick_seconds",
                "serve-engine tick wall time",
                &[],
                &m2ai_obs::latency_buckets(),
            ),
            prediction_seconds: m2ai_obs::histogram(
                "m2ai_serve_prediction_seconds",
                "per-prediction share of the batched model-step wall time",
                &[],
                &m2ai_obs::latency_buckets(),
            ),
            emitted: outcome(&[("outcome", "emitted")]),
            suppressed_stale: outcome(&[("outcome", "suppressed_stale")]),
            suppressed_non_finite: outcome(&[("outcome", "suppressed_non_finite")]),
            suppressed_low_confidence: outcome(&[("outcome", "suppressed_low_confidence")]),
        }
    })
}

/// Opaque handle to one open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

/// Serving-engine limits and per-session health thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission-control cap on concurrent sessions.
    pub max_sessions: usize,
    /// Micro-batch window: at most this many sessions advance per
    /// [`ServeEngine::tick`].
    pub max_batch: usize,
    /// Bound on each session's pending-event queue; overflow sheds the
    /// oldest events.
    pub queue_capacity: usize,
    /// Sliding window length in frames (the training `T`).
    pub history_len: usize,
    /// Health thresholds applied per session.
    pub health: HealthConfig,
    /// Kernel backend to activate when the engine is constructed.
    ///
    /// `None` (the default) inherits whatever process-wide backend is
    /// already active, so existing callers are unaffected. `Some(b)`
    /// switches the process backend on construction — for
    /// [`m2ai_kernels::Backend::QuantI8`] the model must already have
    /// been prepared via `SequenceClassifier::prepare_quantized`.
    pub backend: Option<m2ai_kernels::Backend>,
    /// Streaming incremental extraction for the raw-readings path.
    ///
    /// `None` (the default) keeps the bit-exact batch `FrameBuilder`
    /// on every window. `Some(cfg)` gives each session a
    /// [`crate::stream_extract::StreamExtractor`]: rank-1 sliding
    /// covariance updates plus the GEMM-lowered pseudospectrum scan,
    /// with `cfg.refresh_every` windows between exact recomputes.
    /// Configurations streaming cannot cover silently keep the batch
    /// path per session.
    pub streaming: Option<crate::stream_extract::StreamingExtract>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            max_batch: 64,
            queue_capacity: 32,
            history_len: 12,
            health: HealthConfig::default(),
            backend: None,
            streaming: None,
        }
    }
}

/// Errors surfaced by the serving engine's flow control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: `max_sessions` sessions are already open.
    SessionsFull,
    /// The [`SessionId`] does not name an open session.
    UnknownSession,
    /// A [`SessionCheckpoint`] was minted by an incompatible engine
    /// (different model geometry, class count or window length).
    CheckpointMismatch,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::SessionsFull => write!(f, "admission refused: max_sessions reached"),
            ServeError::UnknownSession => write!(f, "no such session"),
            ServeError::CheckpointMismatch => {
                write!(f, "checkpoint incompatible with this engine")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Outcome of feeding readings (or a frame) to one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PushReport {
    /// Window events enqueued for the next ticks.
    pub enqueued: usize,
    /// Oldest pending events shed by backpressure to stay within
    /// [`ServeConfig::queue_capacity`].
    pub shed: usize,
}

/// A prediction emitted by [`ServeEngine::tick`] for one session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServePrediction {
    /// Session the prediction belongs to.
    pub session: SessionId,
    /// End time of the frame window that produced it.
    pub time_s: f64,
    /// Most likely activity class.
    pub class: usize,
    /// Window-mean class probabilities.
    pub probabilities: Vec<f32>,
    /// Session health when this prediction was made.
    pub health: HealthState,
    /// Top-class probability (convenience copy).
    pub confidence: f32,
    /// Trace identity of the frame that produced this prediction
    /// ([`TraceContext::NONE`] when the frame was unsampled; the
    /// `span_id` is the emit span, so callers can walk the tree).
    /// Purely observational — nothing downstream branches on it.
    pub trace: TraceContext,
}

/// One session slot: windowing, stream state, and the pending queue
/// between `push` and `tick`.
#[derive(Debug)]
struct Slot {
    id: SessionId,
    window: SessionWindow,
    state: StreamState,
    /// Queued events, each carrying the trace identity of the push
    /// that produced it (NONE when unsampled), so a frame's span tree
    /// survives the queue — and checkpoints, see below.
    pending: VecDeque<(WindowEvent, TraceContext)>,
    /// Pending events shed from this session's queue by backpressure.
    shed: usize,
}

/// A self-contained snapshot of one session: its windowing machinery,
/// stream state (LSTM carry + softmax ring) and still-pending events.
///
/// Minted by [`ServeEngine::export_session`] and adopted by
/// [`ServeEngine::restore_session`] on any engine built around the
/// same model and configuration — the restored session continues
/// bit-identically to the original (the snapshot is a deep copy; no
/// state is shared with the source engine). The supervision layer in
/// `m2ai-serve-fabric` ships these across shard restarts.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    window: SessionWindow,
    state: StreamState,
    /// Pending events keep their trace identity so a session migrated
    /// across a shard restart continues its span trees.
    pending: VecDeque<(WindowEvent, TraceContext)>,
    shed: usize,
}

impl SessionCheckpoint {
    /// Events that were still queued (un-ticked) at snapshot time.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Frames absorbed into the snapshot's probability ring.
    pub fn frames_seen(&self) -> usize {
        self.state.frames_seen()
    }

    /// The snapshotted stream state (e.g. for byte-level persistence
    /// via [`StreamState::to_bytes`]).
    pub fn state(&self) -> &StreamState {
        &self.state
    }
}

/// Multi-session serving engine over one shared model.
///
/// See the module docs for the architecture; see
/// [`OnlineIdentifier`](crate::online::OnlineIdentifier) for the
/// single-stream replay baseline this replaces.
#[derive(Debug)]
pub struct ServeEngine {
    model: SequenceClassifier,
    /// Template for each session's frame windowing.
    builder: FrameBuilder,
    cfg: ServeConfig,
    slots: Vec<Option<Slot>>,
    next_id: u64,
    /// Round-robin start position for batch selection.
    cursor: usize,
    scratch: KernelScratch,
    /// Reused event buffer (drained every push).
    events: Vec<WindowEvent>,
    suppressed: usize,
    shed: usize,
}

impl ServeEngine {
    /// Creates an engine around a shared model.
    ///
    /// `builder` is cloned into every session, so all sessions share
    /// the frame layout and calibration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.history_len`, `cfg.max_sessions`, `cfg.max_batch`
    /// or `cfg.queue_capacity` is zero.
    pub fn new(model: SequenceClassifier, builder: FrameBuilder, cfg: ServeConfig) -> Self {
        assert!(cfg.history_len > 0, "history must hold at least one frame");
        assert!(cfg.max_sessions > 0, "need at least one session slot");
        assert!(cfg.max_batch > 0, "micro-batch window must be positive");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        if let Some(b) = cfg.backend {
            m2ai_kernels::set_backend(b);
        }
        let slots = (0..cfg.max_sessions).map(|_| None).collect();
        ServeEngine {
            model,
            builder,
            cfg,
            slots,
            next_id: 0,
            cursor: 0,
            scratch: KernelScratch::new(),
            events: Vec::new(),
            suppressed: 0,
            shed: 0,
        }
    }

    /// Number of currently open sessions.
    pub fn sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Predictions suppressed so far (Stale windows, non-finite
    /// outputs, confidence-gated Degraded windows) across all
    /// sessions.
    pub fn suppressed(&self) -> usize {
        self.suppressed
    }

    /// Pending events shed by backpressure so far, across all
    /// sessions.
    pub fn shed(&self) -> usize {
        self.shed
    }

    /// Total window events pending across all open sessions — the
    /// "is there work?" probe the serve fabric's shard workers use to
    /// decide whether a tick can make progress.
    pub fn pending(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|slot| slot.pending.len())
            .sum()
    }

    /// Opens a session, subject to admission control.
    pub fn open_session(&mut self) -> Result<SessionId, ServeError> {
        let Some(free) = self.slots.iter().position(|s| s.is_none()) else {
            serve_metrics().sessions_full.inc();
            return Err(ServeError::SessionsFull);
        };
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let mut window = SessionWindow::new(
            self.builder.clone(),
            self.cfg.history_len,
            self.cfg.health.clone(),
        );
        if let Some(streaming) = self.cfg.streaming {
            window = window.with_streaming(streaming);
        }
        self.slots[free] = Some(Slot {
            id,
            window,
            state: self.model.stream_state(self.cfg.history_len),
            pending: VecDeque::new(),
            shed: 0,
        });
        Ok(id)
    }

    /// Deep-copies one session into a [`SessionCheckpoint`] — the
    /// session keeps running; the snapshot is independent.
    pub fn export_session(&self, id: SessionId) -> Result<SessionCheckpoint, ServeError> {
        let idx = self.find(id)?;
        let slot = self.slots[idx].as_ref().expect("found above");
        Ok(SessionCheckpoint {
            window: slot.window.clone(),
            state: slot.state.clone(),
            pending: slot.pending.clone(),
            shed: slot.shed,
        })
    }

    /// Snapshots every open session, in slot order.
    pub fn export_sessions(&self) -> Vec<(SessionId, SessionCheckpoint)> {
        self.slots
            .iter()
            .flatten()
            .map(|slot| {
                (
                    slot.id,
                    SessionCheckpoint {
                        window: slot.window.clone(),
                        state: slot.state.clone(),
                        pending: slot.pending.clone(),
                        shed: slot.shed,
                    },
                )
            })
            .collect()
    }

    /// Adopts a snapshot as a *new* session (fresh [`SessionId`]; the
    /// original's id belongs to the engine that minted it). Subject to
    /// the same admission control as [`ServeEngine::open_session`].
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionsFull`] when no slot is free;
    /// [`ServeError::CheckpointMismatch`] when the snapshot's stream
    /// state does not match this engine's model geometry, class count
    /// or configured window length (the engine is left untouched).
    pub fn restore_session(&mut self, ckpt: SessionCheckpoint) -> Result<SessionId, ServeError> {
        let Some(free) = self.slots.iter().position(|s| s.is_none()) else {
            serve_metrics().sessions_full.inc();
            return Err(ServeError::SessionsFull);
        };
        let template = self.model.stream_state(self.cfg.history_len);
        if !ckpt.state.shape_matches(&template) || !ckpt.state.class_dim_is(self.model.n_classes())
        {
            return Err(ServeError::CheckpointMismatch);
        }
        let id = SessionId(self.next_id);
        self.next_id += 1;
        serve_metrics().queue_depth.add(ckpt.pending.len() as i64);
        self.slots[free] = Some(Slot {
            id,
            window: ckpt.window,
            state: ckpt.state,
            pending: ckpt.pending,
            shed: ckpt.shed,
        });
        Ok(id)
    }

    /// Closes a session, freeing its slot (pending events are
    /// discarded).
    pub fn close_session(&mut self, id: SessionId) -> Result<(), ServeError> {
        let idx = self.find(id)?;
        if let Some(slot) = &self.slots[idx] {
            serve_metrics()
                .queue_depth
                .add(-(slot.pending.len() as i64));
        }
        self.slots[idx] = None;
        Ok(())
    }

    /// Current health of one session.
    pub fn session_health(&self, id: SessionId) -> Result<HealthState, ServeError> {
        let idx = self.find(id)?;
        Ok(self.slots[idx]
            .as_ref()
            .expect("found above")
            .window
            .health())
    }

    /// Number of window events queued for one session.
    pub fn queue_len(&self, id: SessionId) -> Result<usize, ServeError> {
        let idx = self.find(id)?;
        Ok(self.slots[idx].as_ref().expect("found above").pending.len())
    }

    /// Pending events shed by backpressure for one session (the
    /// per-session share of [`ServeEngine::shed`]).
    pub fn session_shed(&self, id: SessionId) -> Result<usize, ServeError> {
        let idx = self.find(id)?;
        Ok(self.slots[idx].as_ref().expect("found above").shed)
    }

    fn find(&self, id: SessionId) -> Result<usize, ServeError> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|slot| slot.id == id))
            .ok_or(ServeError::UnknownSession)
    }

    /// Feeds raw tag readings to one session. Completed frame windows
    /// are queued for the next [`ServeEngine::tick`]s; the queue sheds
    /// its oldest entries past [`ServeConfig::queue_capacity`].
    pub fn push(
        &mut self,
        id: SessionId,
        readings: &[TagReading],
    ) -> Result<PushReport, ServeError> {
        self.push_traced(id, readings, TraceContext::NONE)
    }

    /// [`ServeEngine::push`] carrying the frame's trace identity: the
    /// readings batch runs under `ctx` as the ambient trace context
    /// (so extraction spans attach to it) and every window event it
    /// completes is queued tagged with `ctx`.
    pub fn push_traced(
        &mut self,
        id: SessionId,
        readings: &[TagReading],
        ctx: TraceContext,
    ) -> Result<PushReport, ServeError> {
        let idx = self.find(id)?;
        let mut events = std::mem::take(&mut self.events);
        let slot = self.slots[idx].as_mut().expect("found above");
        trace::with_current(ctx, || slot.window.push(readings, &mut events));
        let report = Self::enqueue(
            slot,
            events.drain(..).map(|ev| (ev, ctx)),
            self.cfg.queue_capacity,
            &mut self.shed,
        );
        self.events = events;
        Ok(report)
    }

    /// Feeds one pre-extracted frame to a session, bypassing read
    /// buffering — the path for callers that already run their own
    /// feature extraction (and for benches that must not measure it).
    pub fn push_frame(
        &mut self,
        id: SessionId,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
    ) -> Result<PushReport, ServeError> {
        self.push_frame_traced(id, time_s, frame, health, TraceContext::NONE)
    }

    /// [`ServeEngine::push_frame`] carrying the frame's trace
    /// identity, queued alongside the event.
    pub fn push_frame_traced(
        &mut self,
        id: SessionId,
        time_s: f64,
        frame: Vec<f32>,
        health: HealthState,
        ctx: TraceContext,
    ) -> Result<PushReport, ServeError> {
        let idx = self.find(id)?;
        let slot = self.slots[idx].as_mut().expect("found above");
        let ev = match health {
            HealthState::Stale => WindowEvent::Stale { time_s },
            _ => WindowEvent::Frame {
                time_s,
                frame,
                health,
            },
        };
        Ok(Self::enqueue(
            slot,
            std::iter::once((ev, ctx)),
            self.cfg.queue_capacity,
            &mut self.shed,
        ))
    }

    fn enqueue(
        slot: &mut Slot,
        events: impl Iterator<Item = (WindowEvent, TraceContext)>,
        capacity: usize,
        total_shed: &mut usize,
    ) -> PushReport {
        let mut report = PushReport::default();
        for ev in events {
            if slot.pending.len() == capacity {
                if let Some((_, old_ctx)) = slot.pending.pop_front() {
                    // The shed frame's trace ends here, attributed —
                    // not a silent drop.
                    let mut sp = old_ctx.child("queue");
                    sp.set_session(slot.id.0);
                    sp.end_with(SpanStatus::Shed);
                }
                report.shed += 1;
            }
            slot.pending.push_back(ev);
            report.enqueued += 1;
        }
        *total_shed += report.shed;
        slot.shed += report.shed;
        let m = serve_metrics();
        m.shed.add(report.shed as u64);
        m.queue_depth
            .add(report.enqueued as i64 - report.shed as i64);
        report
    }

    /// The session the next tick would pop an event from first, or
    /// `None` when nothing is pending. Computed from the same
    /// round-robin scan [`ServeEngine::tick`] runs, *without*
    /// advancing anything — so a caller running `tick_limited(1)` can
    /// attribute a panic inside the tick to exactly this session (the
    /// serve fabric's poison-frame probation relies on that).
    pub fn next_ready(&self) -> Option<SessionId> {
        let n = self.slots.len();
        (0..n).find_map(|off| {
            let idx = (self.cursor + off) % n;
            self.slots[idx]
                .as_ref()
                .filter(|slot| !slot.pending.is_empty())
                .map(|slot| slot.id)
        })
    }

    /// Advances up to [`ServeConfig::max_batch`] ready sessions by one
    /// pending event each, running all their frame steps as one
    /// micro-batched model step. Returns the predictions emitted by
    /// sessions whose window ring is full (suppressions are counted,
    /// not returned).
    ///
    /// Selection is round-robin across slots between ticks, so no
    /// session starves when more than `max_batch` are ready; *within*
    /// a tick the batch is processed in slot order, which is
    /// observable only in output ordering — row independence makes the
    /// numbers identical under any order.
    pub fn tick(&mut self) -> Vec<ServePrediction> {
        self.tick_limited(self.cfg.max_batch)
    }

    /// [`ServeEngine::tick`] with a tighter batch cap for this call
    /// only (`max_batch = 1` steps exactly one session — the fabric's
    /// post-restart probation mode). The effective cap is the smaller
    /// of `max_batch` and [`ServeConfig::max_batch`]; numerics are
    /// batching-invariant, so the cap changes scheduling, never
    /// values.
    pub fn tick_limited(&mut self, max_batch: usize) -> Vec<ServePrediction> {
        let cap = max_batch.min(self.cfg.max_batch);
        let m = serve_metrics();
        let _tick_span = m.tick_seconds.time();
        let n = self.slots.len();
        // Pass 1: pick ready sessions round-robin and pop their next
        // event. Stale events act immediately (reset, suppress);
        // frames join the micro-batch.
        let mut rows: Vec<(usize, f64, Vec<f32>, HealthState, TraceContext)> = Vec::new();
        let mut picked = 0usize;
        let start = self.cursor;
        for off in 0..n {
            if picked == cap {
                break;
            }
            let idx = (start + off) % n;
            let Some(slot) = self.slots[idx].as_mut() else {
                continue;
            };
            let Some((ev, ctx)) = slot.pending.pop_front() else {
                continue;
            };
            picked += 1;
            // The next tick resumes the scan just past the last
            // session served, so a saturated batch window cannot
            // starve the slots behind it.
            self.cursor = (idx + 1) % n;
            match ev {
                WindowEvent::Stale { time_s } => {
                    slot.state.reset();
                    self.suppressed += 1;
                    m.suppressed_stale.inc();
                    let mut sp = ctx.child("emit");
                    sp.set_session(slot.id.0);
                    sp.set_time_s(time_s);
                    sp.end_with(SpanStatus::Stale);
                }
                WindowEvent::Frame {
                    time_s,
                    frame,
                    health,
                } => rows.push((idx, time_s, frame, health, ctx)),
            }
        }
        if picked > 0 {
            m.queue_depth.add(-(picked as i64));
        }
        if rows.is_empty() {
            return Vec::new();
        }
        m.batch_size.observe(rows.len() as f64);

        // Pass 2: gather disjoint &mut stream states in slot order
        // (rows are in round-robin order; sort by slot so one sweep
        // over `slots` lines up — numerically order-free, see above).
        rows.sort_by_key(|r| r.0);
        let frames: Vec<&[f32]> = rows.iter().map(|r| r.2.as_slice()).collect();
        let mut states: Vec<&mut StreamState> = Vec::with_capacity(rows.len());
        {
            let mut want = rows.iter().map(|r| r.0).peekable();
            for (i, s) in self.slots.iter_mut().enumerate() {
                if want.peek() == Some(&i) {
                    want.next();
                    states.push(&mut s.as_mut().expect("picked above").state);
                }
            }
        }
        // The batched step is one span per traced row (shared start /
        // end): each session's trace shows its share of the batch.
        let infer_start = rows.iter().any(|r| r.4.is_sampled()).then(trace::clock_us);
        let step_start = m2ai_obs::enabled().then(std::time::Instant::now);
        let probs = self
            .model
            .step_batch_with(&frames, &mut states, &mut self.scratch);
        if let Some(t0) = step_start {
            let per_row = t0.elapsed().as_secs_f64() / rows.len() as f64;
            m.prediction_seconds.observe_n(per_row, rows.len() as u64);
            if let Some(s0) = infer_start {
                let s1 = trace::clock_us();
                for (idx, _, _, _, ctx) in rows.iter().filter(|r| r.4.is_sampled()) {
                    let id = self.slots[*idx].as_ref().expect("picked above").id;
                    let mut sp = ctx.child_at("infer", s0);
                    sp.set_session(id.0);
                    sp.end_at(s1, SpanStatus::Ok);
                    trace::record_exemplar(
                        "m2ai_serve_prediction_seconds",
                        per_row,
                        *ctx,
                        id.0 as i64,
                        -1,
                    );
                }
            }
        }

        // Pass 3: gate and emit.
        let mut out = Vec::new();
        for ((idx, time_s, _, health, ctx), probabilities) in rows.iter().zip(probs) {
            let slot = self.slots[*idx].as_ref().expect("picked above");
            if !slot.state.ready() {
                continue; // window ring still filling — no output yet
            }
            if probabilities.iter().any(|v| !v.is_finite()) {
                // Row independence keeps the other sessions' outputs
                // clean; this one is unscorable.
                self.suppressed += 1;
                m.suppressed_non_finite.inc();
                Self::end_suppressed(*ctx, slot.id, *time_s);
                continue;
            }
            let (class, confidence) = probabilities.iter().enumerate().fold(
                (0usize, f32::NEG_INFINITY),
                |best, (i, &p)| {
                    if p > best.1 {
                        (i, p)
                    } else {
                        best
                    }
                },
            );
            if *health == HealthState::Degraded && confidence < self.cfg.health.min_confidence {
                self.suppressed += 1;
                m.suppressed_low_confidence.inc();
                Self::end_suppressed(*ctx, slot.id, *time_s);
                continue;
            }
            m.emitted.inc();
            let mut sp = ctx.child("emit");
            sp.set_session(slot.id.0);
            sp.set_time_s(*time_s);
            let emit_ctx = sp.ctx();
            sp.end();
            out.push(ServePrediction {
                session: slot.id,
                time_s: *time_s,
                class,
                probabilities,
                health: *health,
                confidence,
                trace: emit_ctx,
            });
        }
        out
    }

    /// Annotated termination for a gated (never-emitted) prediction.
    fn end_suppressed(ctx: TraceContext, id: SessionId, time_s: f64) {
        let mut sp = ctx.child("emit");
        sp.set_session(id.0);
        sp.set_time_s(time_s);
        sp.end_with(SpanStatus::Suppressed);
    }

    /// Runs ticks until every pending queue is empty, collecting all
    /// predictions — the batch-mode convenience for tests and offline
    /// replay.
    pub fn drain(&mut self) -> Vec<ServePrediction> {
        let mut out = Vec::new();
        while self
            .slots
            .iter()
            .any(|s| s.as_ref().is_some_and(|slot| !slot.pending.is_empty()))
        {
            out.extend(self.tick());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::PhaseCalibrator;
    use crate::frames::{FeatureMode, FrameLayout};
    use crate::network::{build_model, Architecture};
    use crate::online::OnlineIdentifier;
    use m2ai_rfsim::geometry::Point2;
    use m2ai_rfsim::reader::{Reader, ReaderConfig};
    use m2ai_rfsim::room::Room;
    use m2ai_rfsim::scene::SceneSnapshot;

    fn layout() -> FrameLayout {
        FrameLayout::new(1, 4, FeatureMode::Joint)
    }

    fn engine(cfg: ServeConfig) -> ServeEngine {
        let layout = layout();
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
        ServeEngine::new(model, builder, cfg)
    }

    fn stream(duration: f64) -> Vec<TagReading> {
        let mut reader = Reader::new(Room::hall(), ReaderConfig::default(), 1);
        let scene = SceneSnapshot::with_tags(vec![Point2::new(4.4, 3.0)]);
        reader.run(|_| scene.clone(), duration)
    }

    #[test]
    fn admission_control_caps_sessions() {
        let mut eng = engine(ServeConfig {
            max_sessions: 2,
            ..ServeConfig::default()
        });
        let a = eng.open_session().unwrap();
        let _b = eng.open_session().unwrap();
        assert_eq!(eng.open_session(), Err(ServeError::SessionsFull));
        eng.close_session(a).unwrap();
        assert!(eng.open_session().is_ok(), "slot must be reusable");
        assert_eq!(eng.sessions(), 2);
    }

    #[test]
    fn unknown_session_is_an_error() {
        let mut eng = engine(ServeConfig::default());
        let id = eng.open_session().unwrap();
        eng.close_session(id).unwrap();
        assert_eq!(eng.close_session(id), Err(ServeError::UnknownSession));
        assert_eq!(eng.push(id, &[]), Err(ServeError::UnknownSession));
        assert_eq!(eng.queue_len(id), Err(ServeError::UnknownSession));
    }

    #[test]
    fn backpressure_sheds_oldest() {
        let mut eng = engine(ServeConfig {
            queue_capacity: 3,
            history_len: 2,
            ..ServeConfig::default()
        });
        let id = eng.open_session().unwrap();
        let dim = layout().frame_dim();
        let mut shed = 0;
        for t in 0..5 {
            let rep = eng
                .push_frame(id, t as f64, vec![0.1; dim], HealthState::Healthy)
                .unwrap();
            shed += rep.shed;
        }
        assert_eq!(eng.queue_len(id).unwrap(), 3);
        assert_eq!(shed, 2);
        assert_eq!(eng.shed(), 2);
        assert_eq!(eng.session_shed(id).unwrap(), 2);
        assert_eq!(
            eng.session_shed(SessionId(99)),
            Err(ServeError::UnknownSession)
        );
        // The oldest events went; the newest survive. Steps still run.
        let preds = eng.drain();
        assert!(preds.iter().all(|p| p.time_s >= 2.0));
    }

    #[test]
    fn serve_matches_online_identifier_first_window() {
        // A fresh serve session's first prediction must bit-match the
        // replay-based OnlineIdentifier on the same stream.
        let readings = stream(4.0);
        let layout = layout();
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let model = build_model(&layout, 12, Architecture::CnnLstm, 1);
        let history = 3;
        let mut ident = OnlineIdentifier::new(builder.clone(), model.clone(), history);
        let replay = ident.push(&readings);
        assert!(!replay.is_empty());

        let mut eng = ServeEngine::new(
            model,
            builder,
            ServeConfig {
                history_len: history,
                ..ServeConfig::default()
            },
        );
        let id = eng.open_session().unwrap();
        eng.push(id, &readings).unwrap();
        let served = eng.drain();
        assert!(!served.is_empty());
        let first = &served[0];
        assert_eq!(first.time_s, replay[0].time_s);
        assert_eq!(first.class, replay[0].class);
        assert_eq!(first.health, replay[0].health);
        assert_eq!(
            first.probabilities, replay[0].probabilities,
            "first full window must bit-match the replay baseline"
        );
    }

    #[test]
    fn stale_resets_stream_state() {
        let cfg = ServeConfig {
            history_len: 2,
            health: HealthConfig {
                stale_timeout_s: 1.0,
                ..HealthConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut eng = engine(cfg);
        let id = eng.open_session().unwrap();
        let full = stream(7.0);
        let before: Vec<TagReading> = full.iter().filter(|r| r.time_s < 2.0).cloned().collect();
        let after: Vec<TagReading> = full.iter().filter(|r| r.time_s >= 5.0).cloned().collect();
        eng.push(id, &before).unwrap();
        let p1 = eng.drain();
        assert!(!p1.is_empty());
        let suppressed_before = eng.suppressed();
        eng.push(id, &after).unwrap();
        let p2 = eng.drain();
        assert!(eng.suppressed() > suppressed_before, "gap must suppress");
        assert!(!p2.is_empty(), "stream resumption must recover");
        assert!(p2[0].time_s > p1.last().unwrap().time_s);
    }

    #[test]
    fn checkpoint_restore_continues_bitwise() {
        // Run one session to the midpoint, snapshot it, restore the
        // snapshot on a *fresh* engine, and feed both the same tail:
        // the prediction streams must be bit-identical.
        let cfg = ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        };
        let mut a = engine(cfg.clone());
        let id_a = a.open_session().unwrap();
        let dim = layout().frame_dim();
        let frame = |t: usize| -> Vec<f32> {
            (0..dim)
                .map(|j| ((t * dim + j) as f32 * 0.23).sin())
                .collect()
        };
        for t in 0..4 {
            a.push_frame(id_a, t as f64, frame(t), HealthState::Healthy)
                .unwrap();
        }
        let head = a.drain();
        let ckpt = a.export_session(id_a).unwrap();
        assert_eq!(ckpt.pending_len(), 0);
        assert_eq!(ckpt.frames_seen(), 2);

        let mut b = engine(cfg);
        let id_b = b.restore_session(ckpt).unwrap();
        for t in 4..8 {
            a.push_frame(id_a, t as f64, frame(t), HealthState::Healthy)
                .unwrap();
            b.push_frame(id_b, t as f64, frame(t), HealthState::Healthy)
                .unwrap();
        }
        let tail_a = a.drain();
        let tail_b = b.drain();
        assert_eq!(tail_a.len(), tail_b.len());
        assert_eq!(head.len() + tail_a.len(), 4 + 4 - 2 + 1);
        for (pa, pb) in tail_a.iter().zip(&tail_b) {
            assert_eq!(pa.time_s, pb.time_s);
            assert_eq!(pa.probabilities, pb.probabilities, "restored diverged");
        }
    }

    #[test]
    fn restore_preserves_pending_events() {
        let mut a = engine(ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        });
        let id = a.open_session().unwrap();
        let dim = layout().frame_dim();
        for t in 0..3 {
            a.push_frame(id, t as f64, vec![0.2; dim], HealthState::Healthy)
                .unwrap();
        }
        let ckpt = a.export_session(id).unwrap();
        assert_eq!(ckpt.pending_len(), 3);
        let mut b = engine(ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        });
        b.restore_session(ckpt).unwrap();
        assert_eq!(b.pending(), 3);
        assert_eq!(b.drain().len(), a.drain().len());
    }

    #[test]
    fn restore_rejects_incompatible_checkpoints() {
        let mut a = engine(ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        });
        let id = a.open_session().unwrap();
        // Absorb a frame so the softmax ring is non-empty (an empty
        // ring carries no class-count evidence).
        let dim = layout().frame_dim();
        a.push_frame(id, 0.0, vec![0.1; dim], HealthState::Healthy)
            .unwrap();
        a.drain();
        let ckpt = a.export_session(id).unwrap();
        // Same model, different window length → mismatch.
        let mut other_window = engine(ServeConfig {
            history_len: 5,
            ..ServeConfig::default()
        });
        assert_eq!(
            other_window.restore_session(ckpt.clone()).err(),
            Some(ServeError::CheckpointMismatch)
        );
        // Different class count → the buffered rows betray it.
        let layout = layout();
        let builder = FrameBuilder::new(layout, PhaseCalibrator::disabled(1, 4), 0.5);
        let wider = build_model(&layout, 48, Architecture::CnnLstm, 1);
        let mut other_model = ServeEngine::new(
            wider,
            builder,
            ServeConfig {
                history_len: 2,
                ..ServeConfig::default()
            },
        );
        assert_eq!(
            other_model.restore_session(ckpt.clone()).err(),
            Some(ServeError::CheckpointMismatch)
        );
        // Full engine → SessionsFull, not a silent drop.
        let mut full = engine(ServeConfig {
            max_sessions: 1,
            history_len: 2,
            ..ServeConfig::default()
        });
        full.open_session().unwrap();
        assert_eq!(
            full.restore_session(ckpt).err(),
            Some(ServeError::SessionsFull)
        );
        assert_eq!(
            a.export_session(SessionId(77)).err(),
            Some(ServeError::UnknownSession)
        );
    }

    #[test]
    fn next_ready_predicts_tick_order() {
        let mut eng = engine(ServeConfig {
            history_len: 2,
            ..ServeConfig::default()
        });
        assert_eq!(eng.next_ready(), None);
        let a = eng.open_session().unwrap();
        let b = eng.open_session().unwrap();
        let dim = layout().frame_dim();
        for t in 0..2 {
            for &id in &[a, b] {
                eng.push_frame(id, t as f64, vec![0.1; dim], HealthState::Healthy)
                    .unwrap();
            }
        }
        // tick_limited(1) must consume exactly the session next_ready
        // named, every time, until the queues run dry.
        let mut served = Vec::new();
        while let Some(next) = eng.next_ready() {
            let before: usize = eng.queue_len(next).unwrap();
            eng.tick_limited(1);
            assert_eq!(eng.queue_len(next).unwrap(), before - 1, "wrong session");
            served.push(next);
        }
        assert_eq!(served.len(), 4);
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn round_robin_serves_everyone() {
        // More ready sessions than the batch window: all still drain.
        let mut eng = engine(ServeConfig {
            max_sessions: 6,
            max_batch: 2,
            history_len: 2,
            ..ServeConfig::default()
        });
        let dim = layout().frame_dim();
        let ids: Vec<SessionId> = (0..6).map(|_| eng.open_session().unwrap()).collect();
        for &id in &ids {
            for t in 0..3 {
                eng.push_frame(id, t as f64, vec![0.05; dim], HealthState::Healthy)
                    .unwrap();
            }
        }
        let preds = eng.drain();
        // 3 frames each, ring of 2 → predictions at t=1 and t=2 per
        // session.
        assert_eq!(preds.len(), 6 * 2);
        for &id in &ids {
            assert_eq!(preds.iter().filter(|p| p.session == id).count(), 2);
            assert_eq!(eng.queue_len(id).unwrap(), 0);
        }
    }
}
