//! Deterministic parallel execution over index-pure tasks.
//!
//! The hot paths of this workspace (dataset generation, per-tag
//! pseudospectrum construction, the baseline battery) all share one
//! shape: `n` independent tasks where task `i`'s result depends only on
//! `i` and on shared read-only state — never on execution order or on
//! the other tasks. For that shape, [`parallel_map`] provides a
//! work-stealing `std::thread::scope` pool whose output is **bit-
//! identical to the serial loop** for any thread count: results are
//! placed by index, so scheduling nondeterminism can never reorder or
//! alter them.
//!
//! No external dependencies; the pool is plain `std` (scoped threads +
//! an atomic work counter), the same idiom as the gradient sharding in
//! `m2ai-nn`'s trainer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Tasks-dispatched counter, resolved once per process.
fn tasks_executed() -> &'static m2ai_obs::Counter {
    static C: std::sync::OnceLock<m2ai_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_par_tasks_total",
            "index-pure tasks dispatched through parallel_map",
            &[],
        )
    })
}

/// Resolves a thread-count knob: `0` means "use the machine's available
/// parallelism", any other value is taken literally.
pub fn resolve_threads(n_threads: usize) -> usize {
    if n_threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        n_threads
    }
}

/// Maps `f` over `0..n_items` on up to `n_threads` workers, returning
/// results ordered by index.
///
/// `f` must be index-pure: `f(i)` may read shared state but its result
/// must depend only on `i`. Under that contract the output is
/// bit-identical to `(0..n_items).map(f).collect()` regardless of
/// `n_threads` (0 = auto-detect, 1 = run serially on the caller's
/// thread).
///
/// Work is distributed dynamically: each worker repeatedly claims the
/// next unclaimed index from an atomic counter, so uneven task costs
/// don't idle workers.
///
/// # Panics
///
/// Propagates a panic from any invocation of `f`.
pub fn parallel_map<T, F>(n_items: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    tasks_executed().add(n_items as u64);
    let threads = resolve_threads(n_threads).min(n_items);
    if threads <= 1 {
        return (0..n_items).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_items {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n_items).map(|_| None).collect();
    for (i, v) in per_worker.into_iter().flatten() {
        slots[i] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_thread_count() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for threads in [0, 1, 2, 3, 8, 33] {
            let par = parallel_map(97, threads, |i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(1, 4, |i| i * 2), vec![0]);
    }

    #[test]
    fn uneven_task_costs_keep_order() {
        // Early indices sleep, late ones return instantly: results must
        // still come back in index order.
        let out = parallel_map(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shared_read_only_state() {
        let table: Vec<f64> = (0..50).map(|i| i as f64 * 0.5).collect();
        let out = parallel_map(50, 3, |i| table[i] * 2.0);
        assert_eq!(out, (0..50).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_zero_uses_hardware() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        parallel_map(8, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
