//! Process-wide thread budget shared by every parallel site.
//!
//! Two layers of this workspace spawn threads for throughput: the serve
//! fabric (one long-lived worker per shard) and the tile-parallel GEMM
//! in `m2ai-kernels` (short scoped bursts per large matmul). Each is
//! individually sized to the machine, so enabling both naively
//! multiplies: `shards × tile-threads` runnable threads on
//! `total` cores. This module is the single arbiter that prevents that.
//!
//! The model is deliberately minimal:
//!
//! * [`total_threads`] — the process budget. Defaults to the machine's
//!   available parallelism; overridable (for tests and containers whose
//!   cgroup quota differs from the core count) via
//!   [`set_total_threads`].
//! * [`reserve_workers`] — long-lived consumers (fabric shards, trainer
//!   gradient shards) register how many concurrent worker threads they
//!   hold. The returned guard releases the reservation on drop.
//! * [`gemm_threads`] — how many threads a *single* tile-parallel GEMM
//!   may use right now: `total / max(1, reserved)`, floored at 1. With
//!   `S` reserved workers each independently running a GEMM, at most
//!   `S · ⌊total/S⌋ ≤ total` tile threads are runnable — never
//!   oversubscribed, even with `shards = cores`.
//!
//! The budget only shapes *parallelism*, never *results*: every
//! parallel site in the workspace is bit-identical across thread
//! counts, so concurrent reservations racing (e.g. under `cargo test`)
//! can alter speed but not output.

use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` = "ask the OS"; anything else is an explicit override.
static TOTAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Worker threads currently reserved by long-lived consumers.
static RESERVED: AtomicUsize = AtomicUsize::new(0);

/// The process-wide thread budget: the override if one is set,
/// otherwise the machine's available parallelism (at least 1).
pub fn total_threads() -> usize {
    let o = TOTAL_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Overrides the process thread budget (`0` restores hardware
/// detection). Intended for tests and quota-limited containers.
pub fn set_total_threads(n: usize) {
    TOTAL_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Worker threads currently reserved via [`reserve_workers`].
pub fn reserved_workers() -> usize {
    RESERVED.load(Ordering::Relaxed)
}

/// RAII guard for a block of reserved worker threads; releases the
/// reservation when dropped.
#[must_use = "dropping the reservation immediately releases it"]
#[derive(Debug)]
pub struct WorkerReservation {
    n: usize,
}

impl WorkerReservation {
    /// Number of worker threads this reservation holds.
    pub fn count(&self) -> usize {
        self.n
    }
}

impl Drop for WorkerReservation {
    fn drop(&mut self) {
        RESERVED.fetch_sub(self.n, Ordering::Relaxed);
    }
}

/// Registers `n` long-lived concurrent worker threads (fabric shards,
/// trainer gradient shards) against the process budget.
pub fn reserve_workers(n: usize) -> WorkerReservation {
    RESERVED.fetch_add(n, Ordering::Relaxed);
    WorkerReservation { n }
}

/// Thread count a single tile-parallel GEMM may use right now.
///
/// `total / max(1, reserved)`, floored at 1: with no reservations a
/// GEMM may use the whole machine; with `S` reserved workers each
/// worker's GEMM gets an equal share so the product stays within
/// budget. `shards = cores` therefore degrades tile parallelism to 1
/// rather than oversubscribing.
pub fn gemm_threads() -> usize {
    let total = total_threads().max(1);
    let workers = reserved_workers().max(1);
    (total / workers).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The budget is process-global; serialize tests that mutate it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        L.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn default_budget_is_hardware() {
        let _g = lock();
        set_total_threads(0);
        assert!(total_threads() >= 1);
    }

    #[test]
    fn reservation_divides_gemm_share() {
        let _g = lock();
        set_total_threads(8);
        assert_eq!(gemm_threads(), 8);
        let shards = reserve_workers(4);
        assert_eq!(reserved_workers(), 4);
        assert_eq!(gemm_threads(), 2);
        assert_eq!(shards.count() * gemm_threads(), 8);
        drop(shards);
        assert_eq!(reserved_workers(), 0);
        assert_eq!(gemm_threads(), 8);
        set_total_threads(0);
    }

    #[test]
    fn shards_equal_cores_never_oversubscribes() {
        let _g = lock();
        for cores in [1usize, 2, 3, 4, 7, 16] {
            set_total_threads(cores);
            let r = reserve_workers(cores);
            assert_eq!(gemm_threads(), 1, "cores={cores}");
            assert!(r.count() * gemm_threads() <= cores);
            drop(r);
        }
        set_total_threads(0);
    }

    #[test]
    fn more_workers_than_budget_floors_at_one() {
        let _g = lock();
        set_total_threads(2);
        let r = reserve_workers(5);
        assert_eq!(gemm_threads(), 1);
        drop(r);
        set_total_threads(0);
    }

    #[test]
    fn stacked_reservations_accumulate() {
        let _g = lock();
        set_total_threads(12);
        let a = reserve_workers(2);
        let b = reserve_workers(4);
        assert_eq!(reserved_workers(), 6);
        assert_eq!(gemm_threads(), 2);
        drop(a);
        assert_eq!(gemm_threads(), 3);
        drop(b);
        set_total_threads(0);
    }
}
