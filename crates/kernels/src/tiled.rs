//! Cache-blocked macro-tiling with a parallel M-tile loop.
//!
//! The [`fast`](crate::fast) microkernels stream whole operands: for
//! shapes that exceed L2 the `B` panel is re-fetched from memory for
//! every output row, and only one core ever works. This module wraps
//! the same arithmetic in a classic GotoBLAS-style `Mc × Kc × Nc`
//! blocking layer:
//!
//! * `B` is packed once per call into panel-major storage — one
//!   contiguous `kc × nc` (or `nc × kc` for the transposed layout)
//!   panel per `(jc, pc)` block, sized to sit in L2 while every row of
//!   an M-tile streams over it.
//! * The M dimension is cut into `Mc`-row macro-tiles, and the tile
//!   loop is fanned out over [`m2ai_par::parallel_map`]. Each task owns
//!   a *disjoint* row range of `C`: it copies its rows into a local
//!   tile, accumulates all `(pc, jc)` panels into it, and returns the
//!   finished rows, which the caller writes back in index order.
//!
//! ## Determinism and bit-exactness
//!
//! Parallelism here never touches a reduction: tasks share only
//! read-only packed operands and each output element is owned by
//! exactly one task. Within a task the `K` panels are visited in
//! ascending `pc` order and each panel's inner loop visits `p` in
//! ascending order, so every output element sees the crate's
//! contractual single `mul_add` chain over ascending `k` — the same
//! chain, step for step, as the single-threaded [`fast`](crate::fast)
//! kernels (intermediate f32 stores are exact). The result is
//! therefore **bit-identical** to `fast` for every thread count, and
//! `reference` remains the semantic oracle within the usual ≤1-ulp-
//! per-step FMA envelope.
//!
//! ## Thread budget
//!
//! The entry points take their parallelism from
//! [`m2ai_par::budget::gemm_threads`], so a GEMM running inside a
//! fabric shard worker automatically shrinks its fan-out as shards are
//! reserved (`shards × tile-threads ≤ cores`). The `_with_threads`
//! variants exist for tests and benchmarks that pin the count.

use crate::fast;

/// Rows per macro-tile (the parallel work unit).
pub const MC: usize = 64;
/// Reduction-dimension panel depth.
pub const KC: usize = 256;
/// Output-column panel width.
pub const NC: usize = 128;

/// Below this many multiply-adds (`m·n·k`) the packing + spawn
/// overhead outweighs the win and the call falls through to `fast`.
const PAR_FLOP_FLOOR: usize = 1 << 20;

/// Tasks spawned through the parallel tile loop.
fn tile_tasks() -> &'static m2ai_obs::Counter {
    static C: std::sync::OnceLock<m2ai_obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| {
        m2ai_obs::counter(
            "m2ai_kernels_tile_tasks_total",
            "M-macro-tile tasks dispatched by the tiled parallel GEMM",
            &[],
        )
    })
}

/// True when the tiled parallel path should engage at all.
fn worthwhile(m: usize, n: usize, k: usize, threads: usize) -> bool {
    threads > 1 && m >= 2 * MC && m.saturating_mul(n).saturating_mul(k) >= PAR_FLOP_FLOOR
}

/// One packed panel of `B`: `rows × cols` contiguous at `off`.
struct Panel {
    /// Start of this panel's block in the reduction dimension.
    p0: usize,
    /// Panel depth along the reduction dimension.
    kc: usize,
    /// First output column covered by this panel.
    j0: usize,
    /// Number of output columns covered.
    nc: usize,
    /// Offset of the panel's contiguous storage in the pack buffer.
    off: usize,
}

/// Packs `B` `[k×n]` row-major into `(pc outer, jc inner)` panels of
/// `kc × nc` row-major each (row = `p`, col = `j`) — the layout
/// [`kernel_broadcast`] streams.
fn pack_b_broadcast(n: usize, k: usize, b: &[f32]) -> (Vec<f32>, Vec<Panel>) {
    let mut data = Vec::with_capacity(k * n);
    let mut panels = Vec::new();
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            let off = data.len();
            for p in p0..p0 + kc {
                data.extend_from_slice(&b[p * n + j0..p * n + j0 + nc]);
            }
            panels.push(Panel {
                p0,
                kc,
                j0,
                nc,
                off,
            });
            j0 += nc;
        }
        p0 += kc;
    }
    (data, panels)
}

/// Packs `B` `[n×k]` row-major into `(pc outer, jc inner)` panels of
/// `nc × kc` row-major each (row = `j`, col = `p`) — the layout
/// [`kernel_dot`] streams.
fn pack_b_dot(n: usize, k: usize, b: &[f32]) -> (Vec<f32>, Vec<Panel>) {
    let mut data = Vec::with_capacity(k * n);
    let mut panels = Vec::new();
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let mut j0 = 0;
        while j0 < n {
            let nc = NC.min(n - j0);
            let off = data.len();
            for j in j0..j0 + nc {
                data.extend_from_slice(&b[j * k + p0..j * k + p0 + kc]);
            }
            panels.push(Panel {
                p0,
                kc,
                j0,
                nc,
                off,
            });
            j0 += nc;
        }
        p0 += kc;
    }
    (data, panels)
}

/// Row-broadcast micro-loop over one packed panel, mirroring
/// [`fast::gemm_nn`]'s NB→4→scalar blocking (identical per-element
/// `mul_add` chains over ascending `p`).
///
/// `a_tile` is `mc × kc` row-major, `panel` is `kc × nc` row-major,
/// `c_tile` is `mc × row_stride` row-major with the panel's columns at
/// `col_off`.
#[allow(clippy::too_many_arguments)]
fn kernel_broadcast(
    mc: usize,
    nc: usize,
    kc: usize,
    a_tile: &[f32],
    panel: &[f32],
    c_tile: &mut [f32],
    row_stride: usize,
    col_off: usize,
) {
    const NB: usize = 16;
    for i in 0..mc {
        let arow = &a_tile[i * kc..(i + 1) * kc];
        let crow = &mut c_tile[i * row_stride + col_off..i * row_stride + col_off + nc];
        let mut j = 0;
        while j + NB <= nc {
            let mut acc = [0.0f32; NB];
            acc.copy_from_slice(&crow[j..j + NB]);
            for (p, &av) in arow.iter().enumerate() {
                let bp = &panel[p * nc + j..p * nc + j + NB];
                for x in 0..NB {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + NB].copy_from_slice(&acc);
            j += NB;
        }
        while j + 4 <= nc {
            let mut acc = [0.0f32; 4];
            acc.copy_from_slice(&crow[j..j + 4]);
            for (p, &av) in arow.iter().enumerate() {
                let bp = &panel[p * nc + j..p * nc + j + 4];
                for x in 0..4 {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        while j < nc {
            let mut s = crow[j];
            for (p, &av) in arow.iter().enumerate() {
                s = av.mul_add(panel[p * nc + j], s);
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// Dot-product micro-loop over one packed panel, mirroring
/// [`fast::gemm_nt`]'s 8-wide independent chains.
///
/// `a_tile` is `mc × kc` row-major, `panel` is `nc × kc` row-major.
#[allow(clippy::too_many_arguments)]
fn kernel_dot(
    mc: usize,
    nc: usize,
    kc: usize,
    a_tile: &[f32],
    panel: &[f32],
    c_tile: &mut [f32],
    row_stride: usize,
    col_off: usize,
) {
    for i in 0..mc {
        let arow = &a_tile[i * kc..(i + 1) * kc];
        let crow = &mut c_tile[i * row_stride + col_off..i * row_stride + col_off + nc];
        let mut j = 0;
        while j + 8 <= nc {
            let b0 = &panel[j * kc..(j + 1) * kc];
            let b1 = &panel[(j + 1) * kc..(j + 2) * kc];
            let b2 = &panel[(j + 2) * kc..(j + 3) * kc];
            let b3 = &panel[(j + 3) * kc..(j + 4) * kc];
            let b4 = &panel[(j + 4) * kc..(j + 5) * kc];
            let b5 = &panel[(j + 5) * kc..(j + 6) * kc];
            let b6 = &panel[(j + 6) * kc..(j + 7) * kc];
            let b7 = &panel[(j + 7) * kc..(j + 8) * kc];
            let mut acc = [0.0f32; 8];
            acc.copy_from_slice(&crow[j..j + 8]);
            for (p, &av) in arow.iter().enumerate() {
                acc[0] = av.mul_add(b0[p], acc[0]);
                acc[1] = av.mul_add(b1[p], acc[1]);
                acc[2] = av.mul_add(b2[p], acc[2]);
                acc[3] = av.mul_add(b3[p], acc[3]);
                acc[4] = av.mul_add(b4[p], acc[4]);
                acc[5] = av.mul_add(b5[p], acc[5]);
                acc[6] = av.mul_add(b6[p], acc[6]);
                acc[7] = av.mul_add(b7[p], acc[7]);
            }
            crow[j..j + 8].copy_from_slice(&acc);
            j += 8;
        }
        while j < nc {
            let brow = &panel[j * kc..(j + 1) * kc];
            let mut s = crow[j];
            for (p, &av) in arow.iter().enumerate() {
                s = av.mul_add(brow[p], s);
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// How each operand layout packs its `A` macro-tile.
enum APack {
    /// `A` is `[m×k]` row-major: tile rows are contiguous `k` slices.
    Rows,
    /// `A` is `[k×m]` row-major (the `tn` shape): tile elements gather
    /// down strided columns.
    Cols,
}

/// Packs one operand into panel storage: `(n, k, b) → (data, panels)`.
type PackFn = fn(usize, usize, &[f32]) -> (Vec<f32>, Vec<Panel>);

/// Micro-kernel over one packed panel:
/// `(mc, nc, kc, a_tile, panel, c_tile, row_stride, col_off)`.
type KernelFn = fn(usize, usize, usize, &[f32], &[f32], &mut [f32], usize, usize);

/// Shared tile driver: packs `B` via `pack`, fans the M-tile loop out
/// over `threads` workers, runs `kernel` per panel, and writes the
/// finished tiles back in index order.
#[allow(clippy::too_many_arguments)]
fn tiled_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pack: PackFn,
    kernel: KernelFn,
    a_pack: APack,
) {
    let (b_data, panels) = pack(n, k, b);
    let n_tiles = m.div_ceil(MC);
    tile_tasks().add(n_tiles as u64);
    let c_ro: &[f32] = c;
    let tiles: Vec<Vec<f32>> = m2ai_par::parallel_map(n_tiles, threads, |t| {
        let i0 = t * MC;
        let mc = MC.min(m - i0);
        let mut c_tile = c_ro[i0 * n..(i0 + mc) * n].to_vec();
        let mut a_tile = vec![0.0f32; mc * KC.min(k)];
        let mut packed_p0 = usize::MAX;
        for panel in &panels {
            if panel.p0 != packed_p0 {
                // New K panel: gather this tile's A block once and
                // reuse it across every jc panel at this depth.
                match a_pack {
                    APack::Rows => {
                        for i in 0..mc {
                            a_tile[i * panel.kc..(i + 1) * panel.kc].copy_from_slice(
                                &a[(i0 + i) * k + panel.p0..(i0 + i) * k + panel.p0 + panel.kc],
                            );
                        }
                    }
                    APack::Cols => {
                        for i in 0..mc {
                            for p in 0..panel.kc {
                                a_tile[i * panel.kc + p] = a[(panel.p0 + p) * m + i0 + i];
                            }
                        }
                    }
                }
                packed_p0 = panel.p0;
            }
            kernel(
                mc,
                panel.nc,
                panel.kc,
                &a_tile[..mc * panel.kc],
                &b_data[panel.off..panel.off + panel.kc * panel.nc],
                &mut c_tile,
                n,
                panel.j0,
            );
        }
        c_tile
    });
    for (t, tile) in tiles.into_iter().enumerate() {
        let i0 = t * MC;
        c[i0 * n..i0 * n + tile.len()].copy_from_slice(&tile);
    }
}

/// C\[m×n\] += A\[m×k\] · B\[k×n\] with an explicit tile-thread count.
pub fn gemm_nn_with_threads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    if !worthwhile(m, n, k, threads) {
        return fast::gemm_nn(m, n, k, a, b, c);
    }
    assert_eq!(a.len(), m * k, "gemm_nn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_nn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nn: C shape mismatch");
    tiled_gemm(
        m,
        n,
        k,
        a,
        b,
        c,
        threads,
        pack_b_broadcast,
        kernel_broadcast,
        APack::Rows,
    );
}

/// C\[m×n\] += A\[m×k\] · Bᵀ (B \[n×k\] row-major) with an explicit
/// tile-thread count.
pub fn gemm_nt_with_threads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    if !worthwhile(m, n, k, threads) {
        return fast::gemm_nt(m, n, k, a, b, c);
    }
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    tiled_gemm(
        m,
        n,
        k,
        a,
        b,
        c,
        threads,
        pack_b_dot,
        kernel_dot,
        APack::Rows,
    );
}

/// C\[m×n\] += Aᵀ · B (A \[k×m\], B \[k×n\] row-major) with an explicit
/// tile-thread count.
pub fn gemm_tn_with_threads(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    if !worthwhile(m, n, k, threads) {
        return fast::gemm_tn(m, n, k, a, b, c);
    }
    assert_eq!(a.len(), k * m, "gemm_tn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_tn: C shape mismatch");
    tiled_gemm(
        m,
        n,
        k,
        a,
        b,
        c,
        threads,
        pack_b_broadcast,
        kernel_broadcast,
        APack::Cols,
    );
}

/// C\[m×n\] += A\[m×k\] · B\[k×n\], budgeted tile parallelism.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nn_with_threads(m, n, k, a, b, c, m2ai_par::budget::gemm_threads());
}

/// C\[m×n\] += A\[m×k\] · Bᵀ (B \[n×k\]), budgeted tile parallelism.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_with_threads(m, n, k, a, b, c, m2ai_par::budget::gemm_threads());
}

/// C\[m×n\] += Aᵀ · B (A \[k×m\], B \[k×n\]), budgeted tile parallelism.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_with_threads(m, n, k, a, b, c, m2ai_par::budget::gemm_threads());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    /// Shapes chosen to exercise tiling for real: m spans multiple
    /// MC tiles with a ragged edge, k spans multiple KC panels, n
    /// spans multiple NC panels.
    const M: usize = 2 * MC + 17;
    const N: usize = NC + 21;
    const K: usize = KC + 33;

    #[test]
    fn nn_bitwise_matches_fast_any_thread_count() {
        let a = lcg(1, M * K);
        let b = lcg(2, K * N);
        let mut want = lcg(3, M * N);
        let seed_c = want.clone();
        fast::gemm_nn(M, N, K, &a, &b, &mut want);
        for threads in [2, 3, 8] {
            let mut c = seed_c.clone();
            gemm_nn_with_threads(M, N, K, &a, &b, &mut c, threads);
            assert_eq!(c, want, "threads={threads}");
        }
    }

    #[test]
    fn nt_bitwise_matches_fast_any_thread_count() {
        let a = lcg(4, M * K);
        let b = lcg(5, N * K);
        let mut want = lcg(6, M * N);
        let seed_c = want.clone();
        fast::gemm_nt(M, N, K, &a, &b, &mut want);
        for threads in [2, 3, 8] {
            let mut c = seed_c.clone();
            gemm_nt_with_threads(M, N, K, &a, &b, &mut c, threads);
            assert_eq!(c, want, "threads={threads}");
        }
    }

    #[test]
    fn tn_bitwise_matches_fast_any_thread_count() {
        let a = lcg(7, K * M);
        let b = lcg(8, K * N);
        let mut want = lcg(9, M * N);
        let seed_c = want.clone();
        fast::gemm_tn(M, N, K, &a, &b, &mut want);
        for threads in [2, 3, 8] {
            let mut c = seed_c.clone();
            gemm_tn_with_threads(M, N, K, &a, &b, &mut c, threads);
            assert_eq!(c, want, "threads={threads}");
        }
    }

    #[test]
    fn small_shapes_fall_through_to_fast() {
        // Below the flop floor nothing tiles; results must still be
        // bitwise identical because the call IS fast::gemm_nn.
        let a = lcg(10, 8 * 8);
        let b = lcg(11, 8 * 8);
        let mut c1 = vec![0.0; 64];
        let mut c2 = vec![0.0; 64];
        gemm_nn_with_threads(8, 8, 8, &a, &b, &mut c1, 4);
        fast::gemm_nn(8, 8, 8, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }
}
