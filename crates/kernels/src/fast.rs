//! Register-blocked `mul_add` microkernels.
//!
//! Blocking strategy: each output element keeps exactly **one**
//! accumulator chain over ascending `k` (the crate's ordering
//! contract), so parallelism comes from working on a block of
//! *adjacent outputs* at once — independent FMA chains that LLVM
//! SLP-vectorises into packed FMA for the row-broadcast shapes
//! (`gemm_nn`/`gemm_tn`/`gemv_t`, where a `B` row is read
//! contiguously) and keeps in scalar registers for the dot-product
//! shapes (`gemm_nt`/`gemv`, where each output reduces its own row).
//! No reassociation ever happens within a single output: the fast and
//! reference backends round each step identically except for the
//! fused multiply-add (≤ 1 ulp per step).

/// Width of the vectorised output block (two AVX2 `f32x8` lanes).
const NB: usize = 16;

/// C\[m×n\] += A\[m×k\] · B\[k×n\], row-major.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_nn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nn: C shape mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NB <= n {
            let mut acc = [0.0f32; NB];
            acc.copy_from_slice(&crow[j..j + NB]);
            for (p, &av) in arow.iter().enumerate() {
                let bp = &b[p * n + j..p * n + j + NB];
                for x in 0..NB {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + NB].copy_from_slice(&acc);
            j += NB;
        }
        while j + 4 <= n {
            let mut acc = [0.0f32; 4];
            acc.copy_from_slice(&crow[j..j + 4]);
            for (p, &av) in arow.iter().enumerate() {
                let bp = &b[p * n + j..p * n + j + 4];
                for x in 0..4 {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        while j < n {
            let mut s = crow[j];
            for (p, &av) in arow.iter().enumerate() {
                s = av.mul_add(b[p * n + j], s);
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// C\[m×n\] += A\[m×k\] · Bᵀ where B is stored \[n×k\] row-major.
///
/// This is the natural layout for `Dense`/LSTM weights (`out × in`):
/// each output is a dot product of an `A` row with a `B` row, so the
/// reduction cannot be packed without reassociating — eight
/// independent scalar chains hide the FMA latency instead.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 8 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let b4 = &b[(j + 4) * k..(j + 5) * k];
            let b5 = &b[(j + 5) * k..(j + 6) * k];
            let b6 = &b[(j + 6) * k..(j + 7) * k];
            let b7 = &b[(j + 7) * k..(j + 8) * k];
            let mut acc = [0.0f32; 8];
            acc.copy_from_slice(&crow[j..j + 8]);
            for (p, &av) in arow.iter().enumerate() {
                acc[0] = av.mul_add(b0[p], acc[0]);
                acc[1] = av.mul_add(b1[p], acc[1]);
                acc[2] = av.mul_add(b2[p], acc[2]);
                acc[3] = av.mul_add(b3[p], acc[3]);
                acc[4] = av.mul_add(b4[p], acc[4]);
                acc[5] = av.mul_add(b5[p], acc[5]);
                acc[6] = av.mul_add(b6[p], acc[6]);
                acc[7] = av.mul_add(b7[p], acc[7]);
            }
            crow[j..j + 8].copy_from_slice(&acc);
            j += 8;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = crow[j];
            for (p, &av) in arow.iter().enumerate() {
                s = av.mul_add(brow[p], s);
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// C\[m×n\] += Aᵀ · B where A is \[k×m\] and B is \[k×n\], row-major.
///
/// The gradient-accumulation shape: `gw += gradsᵀ · inputs` over a
/// batch/time axis `k`. `B` rows are contiguous, so the output block
/// packs exactly like [`gemm_nn`].
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_tn: C shape mismatch");
    for i in 0..m {
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + NB <= n {
            let mut acc = [0.0f32; NB];
            acc.copy_from_slice(&crow[j..j + NB]);
            for p in 0..k {
                let av = a[p * m + i];
                let bp = &b[p * n + j..p * n + j + NB];
                for x in 0..NB {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + NB].copy_from_slice(&acc);
            j += NB;
        }
        while j + 4 <= n {
            let mut acc = [0.0f32; 4];
            acc.copy_from_slice(&crow[j..j + 4]);
            for p in 0..k {
                let av = a[p * m + i];
                let bp = &b[p * n + j..p * n + j + 4];
                for x in 0..4 {
                    acc[x] = av.mul_add(bp[x], acc[x]);
                }
            }
            crow[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        while j < n {
            let mut s = crow[j];
            for p in 0..k {
                s = a[p * m + i].mul_add(b[p * n + j], s);
            }
            crow[j] = s;
            j += 1;
        }
    }
}

/// y\[m\] += A\[m×k\] · x\[k\], row-major A.
pub fn gemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemv: A shape mismatch");
    assert_eq!(x.len(), k, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    let mut i = 0;
    while i + 8 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let a2 = &a[(i + 2) * k..(i + 3) * k];
        let a3 = &a[(i + 3) * k..(i + 4) * k];
        let a4 = &a[(i + 4) * k..(i + 5) * k];
        let a5 = &a[(i + 5) * k..(i + 6) * k];
        let a6 = &a[(i + 6) * k..(i + 7) * k];
        let a7 = &a[(i + 7) * k..(i + 8) * k];
        let mut acc = [0.0f32; 8];
        acc.copy_from_slice(&y[i..i + 8]);
        for (p, &xv) in x.iter().enumerate() {
            acc[0] = a0[p].mul_add(xv, acc[0]);
            acc[1] = a1[p].mul_add(xv, acc[1]);
            acc[2] = a2[p].mul_add(xv, acc[2]);
            acc[3] = a3[p].mul_add(xv, acc[3]);
            acc[4] = a4[p].mul_add(xv, acc[4]);
            acc[5] = a5[p].mul_add(xv, acc[5]);
            acc[6] = a6[p].mul_add(xv, acc[6]);
            acc[7] = a7[p].mul_add(xv, acc[7]);
        }
        y[i..i + 8].copy_from_slice(&acc);
        i += 8;
    }
    while i < m {
        let arow = &a[i * k..(i + 1) * k];
        let mut s = y[i];
        for (p, &xv) in x.iter().enumerate() {
            s = arow[p].mul_add(xv, s);
        }
        y[i] = s;
        i += 1;
    }
}

/// y\[n\] += Aᵀ · x: `y[j] += Σ_r x[r] * a[r*n + j]` for A \[r×n\].
///
/// Row-broadcast shape; the inner loop is element-wise over `j` and
/// auto-vectorises cleanly.
pub fn gemv_t(r: usize, n: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), r * n, "gemv_t: A shape mismatch");
    assert_eq!(x.len(), r, "gemv_t: x length mismatch");
    assert_eq!(y.len(), n, "gemv_t: y length mismatch");
    for (row, &xv) in x.iter().enumerate() {
        let arow = &a[row * n..(row + 1) * n];
        for (slot, &av) in y.iter_mut().zip(arow) {
            *slot = xv.mul_add(av, *slot);
        }
    }
}
