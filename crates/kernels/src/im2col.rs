//! im2col lowering for 1-D convolutions.
//!
//! `Conv1d` over a `[c_in × len_in]` signal with window `kernel` and
//! `stride` becomes a single GEMM once the input windows are unrolled
//! into a `[c_in·kernel × len_out]` column matrix: row `ci*kernel + k`
//! holds sample `x[ci, j*stride + k]` for each output position `j`.
//! That row order matches the `(ci, k)` lexicographic walk of the
//! original 4-deep conv loop, so `W[c_out × c_in·kernel] · cols`
//! reproduces the naive accumulation order element-for-element.

/// Output length of a valid (no-padding) 1-D convolution.
///
/// # Panics
///
/// Panics if `kernel` is zero, larger than `len_in`, or `stride` is 0.
pub fn conv_len_out(len_in: usize, kernel: usize, stride: usize) -> usize {
    assert!(kernel > 0 && kernel <= len_in, "kernel/len mismatch");
    assert!(stride > 0, "stride must be positive");
    (len_in - kernel) / stride + 1
}

/// Unrolls `x` (`[c_in × len_in]`, row-major) into `cols`
/// (`[c_in·kernel × len_out]`, row-major).
pub fn im2col(
    x: &[f32],
    c_in: usize,
    len_in: usize,
    kernel: usize,
    stride: usize,
    cols: &mut [f32],
) {
    let len_out = conv_len_out(len_in, kernel, stride);
    assert_eq!(x.len(), c_in * len_in, "im2col: input shape mismatch");
    assert_eq!(
        cols.len(),
        c_in * kernel * len_out,
        "im2col: cols shape mismatch"
    );
    for ci in 0..c_in {
        let src = &x[ci * len_in..(ci + 1) * len_in];
        for k in 0..kernel {
            let row = &mut cols[(ci * kernel + k) * len_out..(ci * kernel + k + 1) * len_out];
            for (j, slot) in row.iter_mut().enumerate() {
                *slot = src[j * stride + k];
            }
        }
    }
}

/// Scatters column-matrix gradients back onto the input layout:
/// `gx[ci, j*stride + k] += gcols[ci*kernel + k, j]`.
///
/// Inverse of [`im2col`] in the accumulate sense (overlapping windows
/// sum their contributions).
pub fn col2im_accumulate(
    gcols: &[f32],
    c_in: usize,
    len_in: usize,
    kernel: usize,
    stride: usize,
    gx: &mut [f32],
) {
    let len_out = conv_len_out(len_in, kernel, stride);
    assert_eq!(
        gcols.len(),
        c_in * kernel * len_out,
        "col2im: cols shape mismatch"
    );
    assert_eq!(gx.len(), c_in * len_in, "col2im: output shape mismatch");
    for ci in 0..c_in {
        let dst = &mut gx[ci * len_in..(ci + 1) * len_in];
        for k in 0..kernel {
            let row = &gcols[(ci * kernel + k) * len_out..(ci * kernel + k + 1) * len_out];
            for (j, &g) in row.iter().enumerate() {
                dst[j * stride + k] += g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_out_matches_valid_conv() {
        assert_eq!(conv_len_out(5, 2, 1), 4);
        assert_eq!(conv_len_out(7, 3, 2), 3);
        assert_eq!(conv_len_out(4, 4, 1), 1);
        assert_eq!(conv_len_out(6, 1, 1), 6);
    }

    #[test]
    fn im2col_known_layout() {
        // 1 channel, len 4, kernel 2, stride 1 -> cols [2 x 3].
        let x = [10.0, 20.0, 30.0, 40.0];
        let mut cols = [0.0f32; 6];
        im2col(&x, 1, 4, 2, 1, &mut cols);
        // row k=0: x[j], row k=1: x[j+1]
        assert_eq!(cols, [10.0, 20.0, 30.0, 20.0, 30.0, 40.0]);
    }

    #[test]
    fn im2col_two_channels_strided() {
        // 2 channels, len 5, kernel 3, stride 2 -> len_out 2, cols [6 x 2].
        let x = [0.0, 1.0, 2.0, 3.0, 4.0, 10.0, 11.0, 12.0, 13.0, 14.0];
        let mut cols = [0.0f32; 12];
        im2col(&x, 2, 5, 3, 2, &mut cols);
        assert_eq!(
            cols,
            [
                0.0, 2.0, // ci=0 k=0
                1.0, 3.0, // ci=0 k=1
                2.0, 4.0, // ci=0 k=2
                10.0, 12.0, // ci=1 k=0
                11.0, 13.0, // ci=1 k=1
                12.0, 14.0, // ci=1 k=2
            ]
        );
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // kernel 2, stride 1 over len 3: position 1 is covered by two
        // windows (j=0,k=1) and (j=1,k=0).
        let gcols = [1.0, 2.0, 4.0, 8.0]; // rows: k=0 -> [1,2], k=1 -> [4,8]
        let mut gx = [0.0f32; 3];
        col2im_accumulate(&gcols, 1, 3, 2, 1, &mut gx);
        assert_eq!(gx, [1.0, 2.0 + 4.0, 8.0]);
    }
}
