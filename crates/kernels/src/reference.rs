//! Naive scalar kernels — the seed repository's original arithmetic.
//!
//! These mirror the triple-loops that used to live inline in
//! `crates/nn` (`Dense::forward`'s row dot products, `Conv1d`'s window
//! walks, the LSTM gate matmuls): one accumulator per output, reduction
//! index ascending, `acc += a * b` with the product rounded before the
//! add. They are the ground truth that [`crate::fast`] must match to
//! within FMA rounding, and the baseline that the throughput harness
//! measures speedups against. Do not "optimise" them.

/// C\[m×n\] += A\[m×k\] · B\[k×n\], row-major.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_nn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nn: C shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for p in 0..k {
                s += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = s;
        }
    }
}

/// C\[m×n\] += A\[m×k\] · Bᵀ where B is stored \[n×k\] row-major.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt: C shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for p in 0..k {
                s += a[i * k + p] * b[j * k + p];
            }
            c[i * n + j] = s;
        }
    }
}

/// C\[m×n\] += Aᵀ · B where A is \[k×m\] and B is \[k×n\], row-major.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_tn: C shape mismatch");
    for i in 0..m {
        for j in 0..n {
            let mut s = c[i * n + j];
            for p in 0..k {
                s += a[p * m + i] * b[p * n + j];
            }
            c[i * n + j] = s;
        }
    }
}

/// y\[m\] += A\[m×k\] · x\[k\], row-major A.
pub fn gemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemv: A shape mismatch");
    assert_eq!(x.len(), k, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    for i in 0..m {
        let mut s = y[i];
        for p in 0..k {
            s += a[i * k + p] * x[p];
        }
        y[i] = s;
    }
}

/// y\[n\] += Aᵀ · x: `y[j] += Σ_r x[r] * a[r*n + j]` for A \[r×n\].
pub fn gemv_t(r: usize, n: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), r * n, "gemv_t: A shape mismatch");
    assert_eq!(x.len(), r, "gemv_t: x length mismatch");
    assert_eq!(y.len(), n, "gemv_t: y length mismatch");
    for row in 0..r {
        for j in 0..n {
            y[j] += x[row] * a[row * n + j];
        }
    }
}
