//! Int8 symmetric quantization primitives for the inference path.
//!
//! Scheme (the standard post-training recipe):
//!
//! * **Weights** are quantized *per output channel* (per row of the
//!   `out × in` weight matrix): `scale[o] = max|w[o,:]| / 127`,
//!   `q[o,i] = round(w[o,i] / scale[o])`. Per-channel scales cost one
//!   f32 per output and remove the accuracy cliff that a single
//!   per-tensor scale hits when channel magnitudes differ.
//! * **Activations** are quantized *per tensor* with a scale frozen by
//!   a calibration pass over the golden set (`scale = max|x| / 127`
//!   over every activation the site ever saw). Values outside the
//!   calibrated range saturate at ±127.
//! * **Accumulation** is exact: i8×i8 products summed in i32 (no
//!   overflow until `k > 2^17`, far beyond any layer here), then a
//!   single f32 dequant epilogue `y = acc · scale_x · scale_w[o] + b`.
//!
//! Integer accumulation is associative, so these kernels have no
//! ordering contract to preserve — only the f32 epilogue rounds, once
//! per output.

/// A per-row (per-output-channel) symmetric int8 weight matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Quantized values, `rows × cols` row-major.
    pub q: Vec<i8>,
    /// Dequantization scale per row: `w[r,c] ≈ q[r,c] · scales[r]`.
    pub scales: Vec<f32>,
    /// Number of rows (output channels).
    pub rows: usize,
    /// Number of columns (reduction dimension).
    pub cols: usize,
}

/// Quantizes `w` (`rows × cols` row-major) with one symmetric scale
/// per row.
pub fn quantize_rows(w: &[f32], rows: usize, cols: usize) -> QuantizedMatrix {
    assert_eq!(w.len(), rows * cols, "quantize_rows: shape mismatch");
    let mut q = Vec::with_capacity(rows * cols);
    let mut scales = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let scale = activation_scale(max_abs(row));
        scales.push(scale);
        let inv = 1.0 / scale;
        q.extend(row.iter().map(|&v| quantize_one(v, inv)));
    }
    QuantizedMatrix {
        q,
        scales,
        rows,
        cols,
    }
}

/// Largest absolute value in `xs` (0 for an empty slice; NaN-free
/// inputs assumed, as everywhere in this workspace).
pub fn max_abs(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Symmetric scale mapping `[-max_abs, max_abs]` onto `[-127, 127]`.
/// A degenerate (all-zero) range gets scale 1 so dequant stays finite.
pub fn activation_scale(max_abs: f32) -> f32 {
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

#[inline]
fn quantize_one(v: f32, inv_scale: f32) -> i8 {
    (v * inv_scale).round().clamp(-127.0, 127.0) as i8
}

/// Quantizes `x` with a fixed per-tensor scale into `out`
/// (cleared first; saturates outside the calibrated range).
pub fn quantize_into(x: &[f32], scale: f32, out: &mut Vec<i8>) {
    let inv = 1.0 / scale;
    out.clear();
    out.extend(x.iter().map(|&v| quantize_one(v, inv)));
}

/// C\[m×n\] (i32) += A\[m×k\] · Bᵀ where B is \[n×k\] row-major, both i8.
///
/// The dot-product layout used by `Dense` and the LSTM gate matmuls
/// (weights stored `out × in`). Four independent i32 chains per block
/// keep the integer pipeline busy; order is irrelevant (exact).
pub fn gemm_i8_nt(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_i8_nt: A shape mismatch");
    assert_eq!(b.len(), n * k, "gemm_i8_nt: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_i8_nt: C shape mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = [0i32; 4];
            for (p, &av) in arow.iter().enumerate() {
                let av = av as i32;
                acc[0] += av * b0[p] as i32;
                acc[1] += av * b1[p] as i32;
                acc[2] += av * b2[p] as i32;
                acc[3] += av * b3[p] as i32;
            }
            for x in 0..4 {
                crow[j + x] += acc[x];
            }
            j += 4;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut s = 0i32;
            for (p, &av) in arow.iter().enumerate() {
                s += av as i32 * brow[p] as i32;
            }
            crow[j] += s;
            j += 1;
        }
    }
}

/// C\[m×n\] (i32) += A\[m×k\] · B\[k×n\], both i8 row-major.
///
/// The row-broadcast layout used by the im2col convolution
/// (`W[c_out × r] · cols[r × len_out]`).
pub fn gemm_i8_nn(m: usize, n: usize, k: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(a.len(), m * k, "gemm_i8_nn: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8_nn: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm_i8_nn: C shape mismatch");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let av = av as i32;
            if av == 0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (slot, &bv) in crow.iter_mut().zip(brow) {
                *slot += av * bv as i32;
            }
        }
    }
}

/// Dequantizes an `nt`-layout accumulator (`m` activations × `n`
/// output channels): `out[i,j] = acc[i,j] · x_scale · w_scales[j]`,
/// plus `bias[j]` when given. `out` is overwritten.
pub fn dequant_nt(
    m: usize,
    n: usize,
    acc: &[i32],
    x_scale: f32,
    w_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(acc.len(), m * n, "dequant_nt: acc shape mismatch");
    assert_eq!(out.len(), m * n, "dequant_nt: out shape mismatch");
    assert_eq!(w_scales.len(), n, "dequant_nt: scales mismatch");
    for i in 0..m {
        let arow = &acc[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        match bias {
            Some(b) => {
                for j in 0..n {
                    orow[j] = arow[j] as f32 * (x_scale * w_scales[j]) + b[j];
                }
            }
            None => {
                for j in 0..n {
                    orow[j] = arow[j] as f32 * (x_scale * w_scales[j]);
                }
            }
        }
    }
}

/// Dequantizes an `nn`-layout accumulator (`m` output channels × `n`
/// positions): `out[i,j] = acc[i,j] · x_scale · w_scales[i]`, plus
/// `bias[i]` when given. `out` is overwritten.
pub fn dequant_nn(
    m: usize,
    n: usize,
    acc: &[i32],
    x_scale: f32,
    w_scales: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(acc.len(), m * n, "dequant_nn: acc shape mismatch");
    assert_eq!(out.len(), m * n, "dequant_nn: out shape mismatch");
    assert_eq!(w_scales.len(), m, "dequant_nn: scales mismatch");
    for i in 0..m {
        let s = x_scale * w_scales[i];
        let b = bias.map_or(0.0, |b| b[i]);
        let arow = &acc[i * n..(i + 1) * n];
        let orow = &mut out[i * n..(i + 1) * n];
        for j in 0..n {
            orow[j] = arow[j] as f32 * s + b;
        }
    }
}

/// Records one calibration observation (the max-abs activation a
/// quantization site saw) into the
/// `m2ai_kernels_quant_calib_absmax` histogram family.
pub fn record_calibration(site: &'static str, max_abs: f32) {
    use std::sync::{Mutex, OnceLock};
    // The label slice must be 'static; map the known sites onto
    // promoted literals (anything new lands in "other").
    let labels: &'static [(&'static str, &'static str)] = match site {
        "dense" => &[("site", "dense")],
        "conv" => &[("site", "conv")],
        "lstm_x" => &[("site", "lstm_x")],
        "lstm_h" => &[("site", "lstm_h")],
        _ => &[("site", "other")],
    };
    static H: OnceLock<Mutex<Vec<(&'static str, m2ai_obs::Histogram)>>> = OnceLock::new();
    let table = H.get_or_init(|| Mutex::new(Vec::new()));
    let mut table = table.lock().unwrap_or_else(|e| e.into_inner());
    let h = match table.iter().find(|(s, _)| *s == labels[0].1) {
        Some((_, h)) => h.clone(),
        None => {
            let h = m2ai_obs::histogram(
                "m2ai_kernels_quant_calib_absmax",
                "max-abs activation observed per calibration site (frozen int8 range = ±this)",
                labels,
                &[0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0],
            );
            table.push((labels[0].1, h.clone()));
            h
        }
    };
    drop(table);
    h.observe(max_abs as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let w = lcg(1, 7 * 23);
        let qm = quantize_rows(&w, 7, 23);
        for r in 0..7 {
            let scale = qm.scales[r];
            for c in 0..23 {
                let deq = qm.q[r * 23 + c] as f32 * scale;
                assert!(
                    (deq - w[r * 23 + c]).abs() <= scale * 0.5 + 1e-7,
                    "row {r} col {c}"
                );
            }
        }
    }

    #[test]
    fn per_row_scales_track_row_magnitude() {
        // Row 0 is 100x larger than row 1; per-channel scales must
        // keep row 1's resolution 100x finer.
        let w = [100.0, -50.0, 1.0, -0.5];
        let qm = quantize_rows(&w, 2, 2);
        assert!((qm.scales[0] / qm.scales[1] - 100.0).abs() < 1e-3);
        assert_eq!(qm.q[0], 127);
        assert_eq!(qm.q[2], 127);
    }

    #[test]
    fn quantize_saturates_outside_calibrated_range() {
        let mut out = Vec::new();
        quantize_into(&[10.0, -10.0, 0.5], 1.0 / 127.0 * 1.0, &mut out);
        assert_eq!(out[0], 127);
        assert_eq!(out[1], -127);
    }

    #[test]
    fn i8_gemms_match_naive_i32() {
        let m = 5;
        let n = 11;
        let k = 17;
        let a: Vec<i8> = (0..m * k)
            .map(|i| ((i * 37 % 255) as i32 - 127) as i8)
            .collect();
        let bt: Vec<i8> = (0..n * k)
            .map(|i| ((i * 53 % 255) as i32 - 127) as i8)
            .collect();
        let mut c = vec![1i32; m * n];
        gemm_i8_nt(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want: i32 = (0..k)
                    .map(|p| a[i * k + p] as i32 * bt[j * k + p] as i32)
                    .sum();
                assert_eq!(c[i * n + j], want + 1, "nt ({i},{j})");
            }
        }
        let bn: Vec<i8> = (0..k * n)
            .map(|i| ((i * 29 % 255) as i32 - 127) as i8)
            .collect();
        let mut c = vec![-2i32; m * n];
        gemm_i8_nn(m, n, k, &a, &bn, &mut c);
        for i in 0..m {
            for j in 0..n {
                let want: i32 = (0..k)
                    .map(|p| a[i * k + p] as i32 * bn[p * n + j] as i32)
                    .sum();
                assert_eq!(c[i * n + j], want - 2, "nn ({i},{j})");
            }
        }
    }

    #[test]
    fn dequant_applies_per_channel_scale_and_bias() {
        let acc = [127i32, 0, -127, 254];
        let mut out = vec![0.0; 4];
        dequant_nt(2, 2, &acc, 0.5, &[2.0, 4.0], Some(&[1.0, -1.0]), &mut out);
        assert_eq!(out, [128.0, -1.0, -126.0, 507.0]);
        let mut out = vec![0.0; 4];
        dequant_nn(2, 2, &acc, 0.5, &[2.0, 4.0], None, &mut out);
        assert_eq!(out, [127.0, 0.0, -254.0, 508.0]);
    }
}
