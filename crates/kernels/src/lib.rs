//! Shared `f32` compute kernels for the M²AI neural-network hot paths.
//!
//! Every inner loop of the CNN + stacked-LSTM engine (Eq. 17 of the
//! paper) is some flavour of matrix multiply. This crate provides that
//! one primitive in two interchangeable implementations:
//!
//! * [`reference`] — the naive scalar triple-loops the seed repository
//!   shipped with, preserved verbatim (same iteration order, same
//!   `acc += a * b` arithmetic). This is the semantic ground truth.
//! * [`fast`] — register-blocked microkernels built on [`f32::mul_add`]
//!   with 4-wide output blocking. With `+fma` codegen (see
//!   `.cargo/config.toml`) each accumulation step is a single hardware
//!   FMA; LLVM additionally SLP-vectorises the contiguous 4-wide
//!   blocks into AVX lanes.
//!
//! ## Numerical contract
//!
//! Both paths accumulate **into** the caller-provided `C` operand
//! (`C += A·B`), visiting the reduction index `k` in strictly
//! ascending order with one product per step — no split accumulators,
//! no reassociation. The only difference is that the fast path fuses
//! each `a*b + acc` into one correctly-rounded FMA while the reference
//! path rounds the product first. Per output element the two results
//! therefore differ by at most 1 ulp per accumulation step, and the
//! fast result is the *more* accurate one. `tests/kernel_equivalence.rs`
//! (repo root) property-tests this envelope across random shapes.
//!
//! ## Backend switch
//!
//! Callers go through the top-level dispatchers ([`gemm_nn`] & co.),
//! which consult a process-wide [`Backend`] flag (default
//! [`Backend::Fast`]). The flag exists so benchmarks can measure the
//! genuine before/after gap through otherwise identical code paths —
//! it is a measurement tool, not a tuning knob.
//!
//! ## Scratch arenas
//!
//! [`KernelScratch`] is a trivially simple buffer pool: `take` a zeroed
//! `Vec<f32>`, `recycle` it when done. Threaded through the NN layers
//! it removes every steady-state im2col / gate / packing allocation.
//! [`with_thread_scratch`] offers a thread-local fallback for legacy
//! entry points that predate the explicit-scratch signatures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

pub mod fast;
pub mod im2col;
pub mod quant;
pub mod reference;
pub mod tiled;

/// Which kernel implementation the top-level dispatchers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Naive scalar loops — the seed repository's original arithmetic.
    Reference,
    /// Register-blocked `mul_add` microkernels (the default).
    Fast,
    /// The [`fast`] microkernels wrapped in cache-blocked macro-tiling
    /// with a thread-budgeted parallel M-tile loop ([`tiled`]).
    /// Bit-identical to [`Backend::Fast`] for every shape and thread
    /// count; small shapes fall through to `fast` untouched.
    FastParallel,
    /// Int8 quantized inference: layers with prepared [`quant`] state
    /// run i8×i8→i32 matmuls with an f32 dequant epilogue. All
    /// remaining f32 dispatches (training, unprepared layers, gate
    /// math) behave exactly like [`Backend::Fast`].
    QuantI8,
}

static BACKEND: AtomicU8 = AtomicU8::new(1);

/// Returns the currently selected [`Backend`].
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Reference,
        2 => Backend::FastParallel,
        3 => Backend::QuantI8,
        _ => Backend::Fast,
    }
}

/// Selects the process-wide [`Backend`].
///
/// Global rather than thread-local because `fit()` fans training out
/// over scoped worker threads that must all honour the choice. Tests
/// that flip this around measurements must serialise themselves.
pub fn set_backend(b: Backend) {
    let v = match b {
        Backend::Reference => 0,
        Backend::Fast => 1,
        Backend::FastParallel => 2,
        Backend::QuantI8 => 3,
    };
    BACKEND.store(v, Ordering::Relaxed);
    obs_metrics::record_backend(b);
}

/// Backend-selection and GEMM-timing metrics.
mod obs_metrics {
    use super::Backend;
    use std::sync::OnceLock;
    use std::time::Instant;

    fn gauges() -> &'static [m2ai_obs::Gauge; 4] {
        static G: OnceLock<[m2ai_obs::Gauge; 4]> = OnceLock::new();
        G.get_or_init(|| {
            let help = "1 when this kernel backend is the active dispatcher target";
            [
                m2ai_obs::gauge(
                    "m2ai_kernels_backend_active",
                    help,
                    &[("backend", "reference")],
                ),
                m2ai_obs::gauge("m2ai_kernels_backend_active", help, &[("backend", "fast")]),
                m2ai_obs::gauge(
                    "m2ai_kernels_backend_active",
                    help,
                    &[("backend", "fast_parallel")],
                ),
                m2ai_obs::gauge(
                    "m2ai_kernels_backend_active",
                    help,
                    &[("backend", "quant_i8")],
                ),
            ]
        })
    }

    pub(super) fn record_backend(b: Backend) {
        let [reference, fast, fast_parallel, quant] = gauges();
        reference.set((b == Backend::Reference) as i64);
        fast.set((b == Backend::Fast) as i64);
        fast_parallel.set((b == Backend::FastParallel) as i64);
        quant.set((b == Backend::QuantI8) as i64);
    }

    static GEMM_SECONDS: m2ai_obs::HistogramFamily = m2ai_obs::HistogramFamily::new(
        "m2ai_kernels_gemm_seconds",
        "wall seconds per dispatched GEMM, by multiply-add count \
         (small < 2^16, medium < 2^20, large >= 2^20)",
        "shape_class",
        m2ai_obs::latency_buckets,
    );

    /// The three shape-class children, resolved once: `time_gemm` sits
    /// on the per-dispatch hot path, so it must not take the family's
    /// lookup mutex per call.
    fn gemm_seconds() -> &'static [m2ai_obs::Histogram; 3] {
        static H: OnceLock<[m2ai_obs::Histogram; 3]> = OnceLock::new();
        H.get_or_init(|| {
            [
                GEMM_SECONDS.with("small"),
                GEMM_SECONDS.with("medium"),
                GEMM_SECONDS.with("large"),
            ]
        })
    }

    /// Times one dispatched GEMM; the histogram is keyed by a coarse
    /// flop class so tile-level wins are visible per shape regime.
    pub(super) fn time_gemm<R>(m: usize, n: usize, k: usize, f: impl FnOnce() -> R) -> R {
        if !m2ai_obs::enabled() {
            return f();
        }
        let [small, medium, large] = gemm_seconds();
        let flops = m.saturating_mul(n).saturating_mul(k);
        let h = if flops < 1 << 16 {
            small
        } else if flops < 1 << 20 {
            medium
        } else {
            large
        };
        let t0 = Instant::now();
        let out = f();
        h.observe(t0.elapsed().as_secs_f64());
        out
    }
}

/// C\[m×n\] += A\[m×k\] · B\[k×n\] (all row-major).
///
/// A single-row product (`m == 1`) is routed to [`gemv_t`] — the same
/// accumulation chains element for element (bit-exact on either
/// backend), but the matrix-vector blocking suits the skinny shape, so
/// batch-size-1 steps through the batched serving API pay no GEMM
/// overhead.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m == 1 {
        // C[0,j] += Σ_p a[p]·b[p·n+j] is exactly y += Bᵀ·a.
        return gemv_t(k, n, b, a, c);
    }
    obs_metrics::time_gemm(m, n, k, || match backend() {
        Backend::Fast | Backend::QuantI8 => fast::gemm_nn(m, n, k, a, b, c),
        Backend::FastParallel => tiled::gemm_nn(m, n, k, a, b, c),
        Backend::Reference => reference::gemm_nn(m, n, k, a, b, c),
    })
}

/// C\[m×n\] += A\[m×k\] · Bᵀ where B is \[n×k\] row-major.
///
/// A single-row product (`m == 1`) is routed to [`gemv`] — bit-exact
/// (identical per-output accumulation chains) but without the blocked
/// GEMM's row machinery, so single-session steps through the batched
/// serving API keep gemv latency.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    if m == 1 {
        // C[0,j] += Σ_p a[p]·b[j·k+p] is exactly y += B·a.
        return gemv(n, k, b, a, c);
    }
    obs_metrics::time_gemm(m, n, k, || match backend() {
        Backend::Fast | Backend::QuantI8 => fast::gemm_nt(m, n, k, a, b, c),
        Backend::FastParallel => tiled::gemm_nt(m, n, k, a, b, c),
        Backend::Reference => reference::gemm_nt(m, n, k, a, b, c),
    })
}

/// C\[m×n\] += Aᵀ · B where A is \[k×m\] and B is \[k×n\], row-major.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    obs_metrics::time_gemm(m, n, k, || match backend() {
        Backend::Fast | Backend::QuantI8 => fast::gemm_tn(m, n, k, a, b, c),
        Backend::FastParallel => tiled::gemm_tn(m, n, k, a, b, c),
        Backend::Reference => reference::gemm_tn(m, n, k, a, b, c),
    })
}

/// y\[m\] += A\[m×k\] · x\[k\] (row-major A).
pub fn gemv(m: usize, k: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    match backend() {
        Backend::Reference => reference::gemv(m, k, a, x, y),
        _ => fast::gemv(m, k, a, x, y),
    }
}

/// y\[n\] += Aᵀ · x, i.e. `y[j] += Σ_r x[r] * a[r*n + j]` for A \[r×n\].
pub fn gemv_t(r: usize, n: usize, a: &[f32], x: &[f32], y: &mut [f32]) {
    match backend() {
        Backend::Reference => reference::gemv_t(r, n, a, x, y),
        _ => fast::gemv_t(r, n, a, x, y),
    }
}

/// A tiny LIFO pool of reusable `f32` buffers.
///
/// `take` hands out a zeroed buffer of the requested length (reusing a
/// previously recycled allocation when one exists); `recycle` returns
/// it. In the steady state of training/inference every `take` is a
/// `memset`, never a heap allocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    pool: Vec<Vec<f32>>,
}

impl KernelScratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        KernelScratch { pool: Vec::new() }
    }

    /// Returns a zeroed buffer of length `len`.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, v: Vec<f32>) {
        // Keep the pool bounded; dozens of live buffers would indicate
        // a recycle leak, not a workload.
        if self.pool.len() < 32 {
            self.pool.push(v);
        }
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
}

/// Runs `f` with this thread's shared [`KernelScratch`].
///
/// Legacy entry points that predate the explicit `_with` signatures
/// route through here so they still allocate nothing in steady state.
/// Re-entrant calls (possible only if a caller nests legacy APIs) fall
/// back to a fresh temporary pool instead of panicking on the borrow.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut KernelScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_fast() {
        assert_eq!(backend(), Backend::Fast);
    }

    #[test]
    fn gemm_nn_known_values() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> A*B = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        for f in [fast::gemm_nn, reference::gemm_nn] {
            let mut c = [0.0f32; 4];
            f(2, 2, 2, &a, &b, &mut c);
            assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        }
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let mut c = [10.0f32];
        fast::gemm_nn(1, 1, 2, &a, &b, &mut c);
        assert_eq!(c, [10.0 + 3.0 + 8.0]);
    }

    #[test]
    fn gemm_nt_matches_manual_transpose() {
        // A [1x3], B [2x3] (so B^T is [3x2]).
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut c = [0.0f32; 2];
        fast::gemm_nt(1, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [4.0 + 10.0 + 18.0, 7.0 + 16.0 + 27.0]);
    }

    #[test]
    fn gemm_tn_matches_manual_transpose() {
        // A [2x2] (k x m), B [2x3] (k x n): C = A^T * B.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.0, 0.0, 2.0, 0.0, 1.0, 1.0];
        let mut c = [0.0f32; 6];
        fast::gemm_tn(2, 3, 2, &a, &b, &mut c);
        // C[0,:] = 1*[1,0,2] + 3*[0,1,1] = [1,3,5]
        // C[1,:] = 2*[1,0,2] + 4*[0,1,1] = [2,4,8]
        assert_eq!(c, [1.0, 3.0, 5.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    fn gemv_and_gemv_t_known_values() {
        let a = [1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        let x = [1.0, -1.0];
        let mut y = [0.0f32; 2];
        fast::gemv(2, 2, &a, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0]);
        let mut yt = [0.0f32; 2];
        fast::gemv_t(2, 2, &a, &x, &mut yt);
        // y[j] = x[0]*a[0,j] + x[1]*a[1,j] = [1-3, 2-4]
        assert_eq!(yt, [-2.0, -2.0]);
    }

    #[test]
    fn one_row_gemm_nt_is_bitwise_gemv() {
        // The m == 1 fast path must be indistinguishable from the
        // blocked kernel: same chains, same rounding, every element.
        let k = 13;
        let n = 9;
        let a: Vec<f32> = (0..k).map(|i| ((i * 37) as f32 * 0.013).sin()).collect();
        let b: Vec<f32> = (0..n * k)
            .map(|i| ((i * 17) as f32 * 0.007).cos())
            .collect();
        let mut via_dispatch = vec![0.25f32; n];
        gemm_nt(1, n, k, &a, &b, &mut via_dispatch);
        let mut via_blocked = vec![0.25f32; n];
        fast::gemm_nt(1, n, k, &a, &b, &mut via_blocked);
        assert_eq!(via_dispatch, via_blocked);
    }

    #[test]
    fn one_row_gemm_nn_is_bitwise_gemv_t() {
        let k = 11;
        let n = 7;
        let a: Vec<f32> = (0..k).map(|i| ((i * 29) as f32 * 0.011).sin()).collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 13) as f32 * 0.009).cos())
            .collect();
        let mut via_dispatch = vec![-0.5f32; n];
        gemm_nn(1, n, k, &a, &b, &mut via_dispatch);
        let mut via_blocked = vec![-0.5f32; n];
        fast::gemm_nn(1, n, k, &a, &b, &mut via_blocked);
        assert_eq!(via_dispatch, via_blocked);
    }

    #[test]
    fn scratch_reuses_allocations() {
        let mut s = KernelScratch::new();
        let v = s.take(16);
        let ptr = v.as_ptr();
        s.recycle(v);
        let v2 = s.take(8);
        assert_eq!(v2.as_ptr(), ptr);
        assert!(v2.iter().all(|&x| x == 0.0));
        assert_eq!(v2.len(), 8);
    }

    #[test]
    fn thread_scratch_is_reentrant_safe() {
        let out = with_thread_scratch(|s| {
            let v = s.take(4);
            let inner = with_thread_scratch(|s2| s2.take(2).len());
            s.recycle(v);
            inner
        });
        assert_eq!(out, 2);
    }
}
