//! Typed errors for data-dependent failures.
//!
//! Configuration mistakes (zero classes, bad hyper-parameters) stay
//! `assert!`s — they are programmer errors. Everything that can go
//! wrong because of *data* (an empty stream window, a label from a
//! corrupted file, non-finite activations after a fault) is an [`Error`]
//! so callers can degrade instead of crashing.

use crate::serialize::CheckpointError;

/// A data-dependent failure in the nn layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A frame sequence with no frames was submitted for inference.
    EmptySequence,
    /// A sample's label exceeds the model's class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The model's class count.
        n_classes: usize,
    },
    /// The model produced non-finite probabilities (NaN/Inf inputs or a
    /// diverged parameter state).
    NonFiniteOutput,
    /// A checkpoint failed to load.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::EmptySequence => write!(f, "need at least one frame"),
            Error::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            Error::NonFiniteOutput => write!(f, "model produced non-finite probabilities"),
            Error::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for Error {
    fn from(e: CheckpointError) -> Error {
        Error::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(Error::EmptySequence.to_string().contains("frame"));
        let e = Error::LabelOutOfRange {
            label: 9,
            n_classes: 3,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let c: Error = CheckpointError::BadMagic.into();
        assert!(c.to_string().contains("checkpoint"));
    }
}
