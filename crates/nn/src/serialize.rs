//! Checkpointing: a small self-describing binary format for model
//! parameters.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  b"M2AI"      4 bytes
//! version u32         currently 1
//! blocks  u32         number of parameter blocks
//! per block: len u32, then len × f32
//! ```
//!
//! The format stores only parameter *values*; architecture is code.
//! Loading into a model with a different block structure fails.

use crate::Parameterized;

const MAGIC: &[u8; 4] = b"M2AI";
const VERSION: u32 = 1;

/// Errors from [`load_params`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream is not an M2AI checkpoint.
    BadMagic,
    /// The version is unsupported.
    BadVersion(u32),
    /// The stream ended prematurely or has trailing bytes.
    Truncated,
    /// Block `index` has `got` values where the model expects
    /// `expected`.
    ShapeMismatch {
        /// Block index.
        index: usize,
        /// Values expected by the model.
        expected: usize,
        /// Values present in the checkpoint.
        got: usize,
    },
    /// The checkpoint has a different number of blocks than the model.
    BlockCountMismatch {
        /// Blocks expected by the model.
        expected: usize,
        /// Blocks present in the checkpoint.
        got: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an M2AI checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint data truncated or oversized"),
            CheckpointError::ShapeMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "parameter block {index} size mismatch: expected {expected}, got {got}"
            ),
            CheckpointError::BlockCountMismatch { expected, got } => {
                write!(f, "block count mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serialises every parameter block of `model` into a byte vector.
pub fn save_params(model: &mut dyn Parameterized) -> Vec<u8> {
    let mut blocks: Vec<Vec<f32>> = Vec::new();
    model.visit_params(&mut |p, _| blocks.push(p.to_vec()));
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for b in &blocks {
        out.extend_from_slice(&(b.len() as u32).to_le_bytes());
        for v in b {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Restores parameters saved by [`save_params`] into `model`.
///
/// # Errors
///
/// Returns a [`CheckpointError`] if the bytes are malformed or the
/// block structure differs from the model's.
pub fn load_params(model: &mut dyn Parameterized, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
        if *pos + n > bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let n_blocks = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
    let mut blocks: Vec<Vec<f32>> = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
        let raw = take(&mut pos, len * 4)?;
        let block = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        blocks.push(block);
    }
    if pos != bytes.len() {
        return Err(CheckpointError::Truncated);
    }

    // Validate structure before mutating anything.
    let mut expected_sizes = Vec::new();
    model.visit_params(&mut |p, _| expected_sizes.push(p.len()));
    if expected_sizes.len() != blocks.len() {
        return Err(CheckpointError::BlockCountMismatch {
            expected: expected_sizes.len(),
            got: blocks.len(),
        });
    }
    for (i, (want, block)) in expected_sizes.iter().zip(&blocks).enumerate() {
        if *want != block.len() {
            return Err(CheckpointError::ShapeMismatch {
                index: i,
                expected: *want,
                got: block.len(),
            });
        }
    }
    let mut idx = 0;
    model.visit_params(&mut |p, _| {
        p.copy_from_slice(&blocks[idx]);
        idx += 1;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Sequential};

    #[test]
    fn roundtrip_preserves_params() {
        let mut a = Sequential::new(vec![
            Layer::dense(3, 4, 1),
            Layer::relu(),
            Layer::dense(4, 2, 2),
        ]);
        let bytes = save_params(&mut a);
        let mut b = Sequential::new(vec![
            Layer::dense(3, 4, 9),
            Layer::relu(),
            Layer::dense(4, 2, 8),
        ]);
        load_params(&mut b, &bytes).unwrap();
        let x = [0.3, -0.5, 0.9];
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = Sequential::new(vec![Layer::dense(2, 2, 0)]);
        let mut bytes = save_params(&mut m);
        bytes[0] = b'X';
        assert_eq!(load_params(&mut m, &bytes), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn rejects_bad_version() {
        let mut m = Sequential::new(vec![Layer::dense(2, 2, 0)]);
        let mut bytes = save_params(&mut m);
        bytes[4] = 99;
        assert!(matches!(
            load_params(&mut m, &bytes),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let mut m = Sequential::new(vec![Layer::dense(2, 2, 0)]);
        let bytes = save_params(&mut m);
        assert_eq!(
            load_params(&mut m, &bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            load_params(&mut m, &extended),
            Err(CheckpointError::Truncated)
        );
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut a = Sequential::new(vec![Layer::dense(2, 2, 0)]);
        let bytes = save_params(&mut a);
        let mut b = Sequential::new(vec![Layer::dense(2, 3, 0)]);
        assert!(matches!(
            load_params(&mut b, &bytes),
            Err(CheckpointError::ShapeMismatch { .. })
        ));
        let mut c = Sequential::new(vec![Layer::dense(2, 2, 0), Layer::dense(2, 2, 1)]);
        assert!(matches!(
            load_params(&mut c, &bytes),
            Err(CheckpointError::BlockCountMismatch { .. })
        ));
    }

    #[test]
    fn failed_load_leaves_model_untouched() {
        let mut a = Sequential::new(vec![Layer::dense(2, 2, 3)]);
        let x = [1.0, -1.0];
        let before = a.forward(&x);
        let mut bad = Sequential::new(vec![Layer::dense(3, 3, 0)]);
        let bytes = save_params(&mut bad);
        assert!(load_params(&mut a, &bytes).is_err());
        assert_eq!(a.forward(&x), before);
    }

    #[test]
    fn error_messages_nonempty() {
        for e in [
            CheckpointError::BadMagic,
            CheckpointError::BadVersion(2),
            CheckpointError::Truncated,
            CheckpointError::ShapeMismatch {
                index: 0,
                expected: 1,
                got: 2,
            },
            CheckpointError::BlockCountMismatch {
                expected: 1,
                got: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
