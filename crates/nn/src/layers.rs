//! Feed-forward layers and their composition.
//!
//! Layers follow a functional forward/backward contract: `forward`
//! is pure (no internal caching), and `backward` receives the same
//! input the forward pass saw, accumulates parameter gradients, and
//! returns the gradient with respect to the input. This makes
//! backpropagation-through-time trivial — the sequence model simply
//! keeps the per-timestep inputs and replays them in reverse.
//!
//! ## Kernel backends and scratch
//!
//! The arithmetic lives in [`m2ai_kernels`]: `Dense` is a GEMV/GEMM,
//! `Conv1d` is lowered through im2col onto the same GEMM, and both
//! dispatch on the process-wide [`m2ai_kernels::Backend`] (fast
//! blocked kernels by default, the seed's naive loops under
//! `Backend::Reference`). Every layer also offers `*_with` variants
//! taking a [`KernelScratch`] so hot callers (`fit()`, the online
//! pipeline) reuse im2col/packing buffers instead of allocating per
//! frame; the plain signatures delegate to a thread-local scratch.

use crate::init::he_uniform;
use crate::Parameterized;
use m2ai_kernels::im2col::{col2im_accumulate, im2col};
use m2ai_kernels::{self as kernels, quant, Backend, KernelScratch};

/// Frozen int8 inference state of a linear layer: per-output-channel
/// quantized weights plus the calibrated per-tensor input scale.
///
/// Built by the layer's `freeze_quant` after a calibration pass;
/// consulted by the forward paths only under [`Backend::QuantI8`].
/// Training never reads or updates it — after any weight update the
/// owner must re-run calibration/freeze for the state to be
/// meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantState {
    /// Per-row symmetric int8 weights.
    pub qw: quant::QuantizedMatrix,
    /// Per-tensor activation scale frozen from calibration.
    pub x_scale: f32,
}

/// A fully-connected layer `y = Wx + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    /// Row-major `out_dim × in_dim` weights.
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    /// Max-abs input seen by the calibration pass.
    calib_in: f32,
    /// Frozen int8 state; `None` until `freeze_quant`.
    quant: Option<QuantState>,
}

impl Dense {
    /// Creates a Dense layer with He-uniform weights.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Dense {
            in_dim,
            out_dim,
            w: he_uniform(in_dim, in_dim * out_dim, seed),
            b: vec![0.0; out_dim],
            gw: vec![0.0; in_dim * out_dim],
            gb: vec![0.0; out_dim],
            calib_in: 0.0,
            quant: None,
        }
    }

    /// Calibration: absorbs the max-abs of one input (or a whole
    /// row-major batch of inputs) this layer would see at inference.
    pub fn observe(&mut self, xs: &[f32]) {
        self.calib_in = self.calib_in.max(quant::max_abs(xs));
    }

    /// Freezes int8 inference state from the current weights and the
    /// calibrated input range.
    pub fn freeze_quant(&mut self) {
        quant::record_calibration("dense", self.calib_in);
        self.quant = Some(QuantState {
            qw: quant::quantize_rows(&self.w, self.out_dim, self.in_dim),
            x_scale: quant::activation_scale(self.calib_in),
        });
    }

    /// Drops quantized state and calibration statistics.
    pub fn clear_quant(&mut self) {
        self.calib_in = 0.0;
        self.quant = None;
    }

    /// True once `freeze_quant` has produced int8 state.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// The int8 path for a `rows × in_dim` batch: quantize activations
    /// with the frozen per-tensor scale, accumulate i8×i8 in i32, and
    /// dequantize once per output with the per-channel weight scale
    /// and the f32 bias.
    fn forward_quant(&self, q: &QuantState, xs: &[f32], rows: usize, out: &mut [f32]) {
        let mut xi8 = Vec::new();
        quant::quantize_into(xs, q.x_scale, &mut xi8);
        let mut acc = vec![0i32; rows * self.out_dim];
        quant::gemm_i8_nt(rows, self.out_dim, self.in_dim, &xi8, &q.qw.q, &mut acc);
        quant::dequant_nt(
            rows,
            self.out_dim,
            &acc,
            q.x_scale,
            &q.qw.scales,
            Some(&self.b),
            out,
        );
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    /// [`Dense::forward`] reusing buffers from `scratch`.
    pub fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "Dense input size mismatch");
        let mut y = scratch.take(self.out_dim);
        if kernels::backend() == Backend::QuantI8 {
            if let Some(q) = &self.quant {
                self.forward_quant(q, x, 1, &mut y);
                return y;
            }
        }
        kernels::gemv(self.out_dim, self.in_dim, &self.w, x, &mut y);
        for (yo, bo) in y.iter_mut().zip(&self.b) {
            *yo += bo;
        }
        y
    }

    /// Forward pass over `rows` stacked inputs (`[rows × in_dim]`,
    /// row-major), producing `[rows × out_dim]` — one GEMM for the
    /// whole batch.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != rows * in_dim`.
    pub fn forward_batch(&self, xs: &[f32], rows: usize) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_batch_with(xs, rows, s))
    }

    /// [`Dense::forward_batch`] reusing buffers from `scratch`. A
    /// one-row batch dispatches to the GEMV microkernel (bit-exact),
    /// so single-session steps through the batched serving API keep
    /// matrix-vector latency.
    pub fn forward_batch_with(
        &self,
        xs: &[f32],
        rows: usize,
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        assert_eq!(
            xs.len(),
            rows * self.in_dim,
            "Dense batch input size mismatch"
        );
        let mut ys = scratch.take(rows * self.out_dim);
        if kernels::backend() == Backend::QuantI8 {
            if let Some(q) = &self.quant {
                self.forward_quant(q, xs, rows, &mut ys);
                return ys;
            }
        }
        kernels::gemm_nt(rows, self.out_dim, self.in_dim, xs, &self.w, &mut ys);
        for row in ys.chunks_exact_mut(self.out_dim) {
            for (yo, bo) in row.iter_mut().zip(&self.b) {
                *yo += bo;
            }
        }
        ys
    }

    /// Backward pass: accumulates gradients, returns `∂L/∂x`.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(grad_out.len(), self.out_dim);
        assert_eq!(x.len(), self.in_dim);
        for (o, &g) in grad_out.iter().enumerate() {
            self.gb[o] += g;
        }
        // Rank-1 weight update: gw += grad_outᵀ · x as a k=1 GEMM.
        kernels::gemm_tn(self.out_dim, self.in_dim, 1, grad_out, x, &mut self.gw);
        let mut gx = vec![0.0; self.in_dim];
        kernels::gemv_t(self.out_dim, self.in_dim, &self.w, grad_out, &mut gx);
        gx
    }

    /// Batched backward over `rows` stacked `(x, grad_out)` pairs:
    /// parameter gradients accumulate across the whole batch in one
    /// GEMM each; returns the stacked `∂L/∂x` (`[rows × in_dim]`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn backward_batch(&mut self, xs: &[f32], grads: &[f32], rows: usize) -> Vec<f32> {
        assert_eq!(xs.len(), rows * self.in_dim, "Dense batch input mismatch");
        assert_eq!(
            grads.len(),
            rows * self.out_dim,
            "Dense batch gradient mismatch"
        );
        for grow in grads.chunks_exact(self.out_dim) {
            for (o, &g) in grow.iter().enumerate() {
                self.gb[o] += g;
            }
        }
        kernels::gemm_tn(self.out_dim, self.in_dim, rows, grads, xs, &mut self.gw);
        let mut gxs = vec![0.0; rows * self.in_dim];
        kernels::gemm_nn(rows, self.in_dim, self.out_dim, grads, &self.w, &mut gxs);
        gxs
    }
}

impl Parameterized for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

/// A 1-D convolution over `(channels, length)` inputs (valid padding).
///
/// This is the CONV-E/CONV-F building block of Fig. 6: the
/// pseudospectrum frame enters as `n_tags` channels over 180 angle
/// bins and is progressively reduced.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv1d {
    c_in: usize,
    len_in: usize,
    c_out: usize,
    kernel: usize,
    stride: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    gw: Vec<f32>,
    gb: Vec<f32>,
    /// Max-abs input seen by the calibration pass.
    calib_in: f32,
    /// Frozen int8 state; `None` until `freeze_quant`.
    quant: Option<QuantState>,
}

impl Conv1d {
    /// Creates a convolution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit (`kernel > len_in`), or any
    /// dimension is zero.
    pub fn new(
        c_in: usize,
        len_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Self {
        assert!(c_in > 0 && c_out > 0 && kernel > 0 && stride > 0);
        assert!(kernel <= len_in, "kernel must fit in the input length");
        let fan_in = c_in * kernel;
        Conv1d {
            c_in,
            len_in,
            c_out,
            kernel,
            stride,
            w: he_uniform(fan_in, c_out * c_in * kernel, seed),
            b: vec![0.0; c_out],
            gw: vec![0.0; c_out * c_in * kernel],
            gb: vec![0.0; c_out],
            calib_in: 0.0,
            quant: None,
        }
    }

    /// Calibration: absorbs the max-abs of one input frame.
    pub fn observe(&mut self, x: &[f32]) {
        self.calib_in = self.calib_in.max(quant::max_abs(x));
    }

    /// Freezes int8 inference state from the current weights and the
    /// calibrated input range. Weight rows are the `c_out` filters
    /// over the `c_in·kernel` im2col reduction axis, so per-row
    /// quantization is per-output-channel.
    pub fn freeze_quant(&mut self) {
        quant::record_calibration("conv", self.calib_in);
        self.quant = Some(QuantState {
            qw: quant::quantize_rows(&self.w, self.c_out, self.c_in * self.kernel),
            x_scale: quant::activation_scale(self.calib_in),
        });
    }

    /// Drops quantized state and calibration statistics.
    pub fn clear_quant(&mut self) {
        self.calib_in = 0.0;
        self.quant = None;
    }

    /// True once `freeze_quant` has produced int8 state.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Output length along the convolved axis.
    pub fn len_out(&self) -> usize {
        (self.len_in - self.kernel) / self.stride + 1
    }

    /// Flattened input dimension (`c_in × len_in`).
    pub fn in_dim(&self) -> usize {
        self.c_in * self.len_in
    }

    /// Flattened output dimension (`c_out × len_out`).
    pub fn out_dim(&self) -> usize {
        self.c_out * self.len_out()
    }

    #[inline]
    fn widx(&self, o: usize, ci: usize, k: usize) -> usize {
        (o * self.c_in + ci) * self.kernel + k
    }

    /// Forward pass over a flattened `(c_in, len_in)` input.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != c_in × len_in`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    /// [`Conv1d::forward`] reusing the im2col buffer from `scratch`.
    ///
    /// Under the fast backend the window walk is lowered through
    /// im2col onto one `[c_out × c_in·kernel] · [c_in·kernel ×
    /// len_out]` GEMM seeded with the bias — the same `(ci, k)`
    /// accumulation order as the naive loop, kept in the `reference`
    /// path below.
    pub fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim(), "Conv1d input size mismatch");
        if kernels::backend() == Backend::Reference {
            return self.forward_reference(x, scratch);
        }
        let len_out = self.len_out();
        let r = self.c_in * self.kernel;
        let mut cols = scratch.take(r * len_out);
        im2col(
            x,
            self.c_in,
            self.len_in,
            self.kernel,
            self.stride,
            &mut cols,
        );
        let mut y = scratch.take(self.c_out * len_out);
        if kernels::backend() == Backend::QuantI8 {
            if let Some(q) = &self.quant {
                // Quantize the im2col activations once; the filters are
                // already int8. Integer accumulation, one f32 epilogue.
                let mut ci8 = Vec::new();
                quant::quantize_into(&cols, q.x_scale, &mut ci8);
                let mut acc = vec![0i32; self.c_out * len_out];
                quant::gemm_i8_nn(self.c_out, len_out, r, &q.qw.q, &ci8, &mut acc);
                quant::dequant_nn(
                    self.c_out,
                    len_out,
                    &acc,
                    q.x_scale,
                    &q.qw.scales,
                    Some(&self.b),
                    &mut y,
                );
                scratch.recycle(cols);
                return y;
            }
        }
        for (o, row) in y.chunks_exact_mut(len_out).enumerate() {
            row.fill(self.b[o]);
        }
        kernels::gemm_nn(self.c_out, len_out, r, &self.w, &cols, &mut y);
        scratch.recycle(cols);
        y
    }

    /// The seed repository's original 4-deep loop, bit-for-bit.
    fn forward_reference(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        let len_out = self.len_out();
        let mut y = scratch.take(self.c_out * len_out);
        for o in 0..self.c_out {
            for j in 0..len_out {
                let mut acc = self.b[o];
                let start = j * self.stride;
                for ci in 0..self.c_in {
                    let xrow = &x[ci * self.len_in + start..ci * self.len_in + start + self.kernel];
                    let wrow = &self.w[self.widx(o, ci, 0)..self.widx(o, ci, 0) + self.kernel];
                    for k in 0..self.kernel {
                        acc += wrow[k] * xrow[k];
                    }
                }
                y[o * len_out + j] = acc;
            }
        }
        y
    }

    /// Backward pass: accumulates gradients, returns `∂L/∂x`.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.backward_with(x, grad_out, s))
    }

    /// [`Conv1d::backward`] reusing im2col buffers from `scratch`.
    ///
    /// Weight gradients accumulate through the *same* im2col buffer
    /// as the forward lowering (`gw += grad_out · colsᵀ`), replacing
    /// the duplicated window re-walk of the naive loop. Input
    /// gradients come from `colsᵀ`-shaped `gcols = Wᵀ · grad_out`
    /// scattered back with col2im; overlapping windows are summed in
    /// a different (output-major) order than the naive loop, a
    /// documented reassociation of gradient terms (see DESIGN.md).
    pub fn backward_with(
        &mut self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        let len_out = self.len_out();
        assert_eq!(grad_out.len(), self.c_out * len_out);
        assert_eq!(x.len(), self.in_dim(), "Conv1d input size mismatch");
        if kernels::backend() == Backend::Reference {
            return self.backward_reference(x, grad_out);
        }
        let r = self.c_in * self.kernel;
        let mut cols = scratch.take(r * len_out);
        im2col(
            x,
            self.c_in,
            self.len_in,
            self.kernel,
            self.stride,
            &mut cols,
        );
        for (o, grow) in grad_out.chunks_exact(len_out).enumerate() {
            let mut s = self.gb[o];
            for &g in grow {
                s += g;
            }
            self.gb[o] = s;
        }
        kernels::gemm_nt(self.c_out, r, len_out, grad_out, &cols, &mut self.gw);
        let mut gcols = scratch.take(r * len_out);
        kernels::gemm_tn(r, len_out, self.c_out, &self.w, grad_out, &mut gcols);
        let mut gx = vec![0.0; self.in_dim()];
        col2im_accumulate(
            &gcols,
            self.c_in,
            self.len_in,
            self.kernel,
            self.stride,
            &mut gx,
        );
        scratch.recycle(gcols);
        scratch.recycle(cols);
        gx
    }

    /// The seed repository's original backward loop, bit-for-bit.
    fn backward_reference(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        let len_out = self.len_out();
        let mut gx = vec![0.0; self.in_dim()];
        for o in 0..self.c_out {
            for j in 0..len_out {
                let g = grad_out[o * len_out + j];
                if g == 0.0 {
                    continue;
                }
                self.gb[o] += g;
                let start = j * self.stride;
                for ci in 0..self.c_in {
                    let base_x = ci * self.len_in + start;
                    let base_w = self.widx(o, ci, 0);
                    for k in 0..self.kernel {
                        self.gw[base_w + k] += g * x[base_x + k];
                        gx[base_x + k] += g * self.w[base_w + k];
                    }
                }
            }
        }
        gx
    }
}

/// One layer of a [`Sequential`] network.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(Dense),
    /// 1-D convolution.
    Conv1d(Conv1d),
    /// Rectified linear unit.
    Relu,
}

impl Layer {
    /// Convenience constructor for a [`Dense`] layer.
    pub fn dense(in_dim: usize, out_dim: usize, seed: u64) -> Layer {
        Layer::Dense(Dense::new(in_dim, out_dim, seed))
    }

    /// Convenience constructor for a [`Conv1d`] layer.
    pub fn conv1d(
        c_in: usize,
        len_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        seed: u64,
    ) -> Layer {
        Layer::Conv1d(Conv1d::new(c_in, len_in, c_out, kernel, stride, seed))
    }

    /// Convenience constructor for a ReLU.
    pub fn relu() -> Layer {
        Layer::Relu
    }

    #[cfg(test)]
    fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        match self {
            Layer::Dense(d) => d.forward_with(x, scratch),
            Layer::Conv1d(c) => c.forward_with(x, scratch),
            Layer::Relu => {
                let mut y = scratch.take(x.len());
                for (slot, &v) in y.iter_mut().zip(x) {
                    *slot = v.max(0.0);
                }
                y
            }
        }
    }

    #[cfg(test)]
    fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.backward_with(x, grad_out, s))
    }

    /// Forward pass that also feeds this layer's calibration
    /// statistics (max-abs input range) for int8 quantization.
    fn calibrate_forward_with(&mut self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        match self {
            Layer::Dense(d) => d.observe(x),
            Layer::Conv1d(c) => c.observe(x),
            Layer::Relu => {}
        }
        self.forward_with(x, scratch)
    }

    /// Freezes int8 state on every parameterized layer.
    fn freeze_quant(&mut self) {
        match self {
            Layer::Dense(d) => d.freeze_quant(),
            Layer::Conv1d(c) => c.freeze_quant(),
            Layer::Relu => {}
        }
    }

    /// Drops int8 state and calibration statistics.
    fn clear_quant(&mut self) {
        match self {
            Layer::Dense(d) => d.clear_quant(),
            Layer::Conv1d(c) => c.clear_quant(),
            Layer::Relu => {}
        }
    }

    fn backward_with(
        &mut self,
        x: &[f32],
        grad_out: &[f32],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        match self {
            Layer::Dense(d) => d.backward(x, grad_out),
            Layer::Conv1d(c) => c.backward_with(x, grad_out, scratch),
            Layer::Relu => {
                let mut gx = scratch.take(x.len());
                for ((slot, &xi), &g) in gx.iter_mut().zip(x).zip(grad_out) {
                    *slot = if xi > 0.0 { g } else { 0.0 };
                }
                gx
            }
        }
    }
}

impl Parameterized for Layer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        match self {
            Layer::Dense(d) => {
                f(&mut d.w, &mut d.gw);
                f(&mut d.b, &mut d.gb);
            }
            Layer::Conv1d(c) => {
                f(&mut c.w, &mut c.gw);
                f(&mut c.b, &mut c.gb);
            }
            Layer::Relu => {}
        }
    }
}

/// Saved activations from one [`Sequential::forward_cached`] call:
/// the input each layer received, plus the final output.
#[derive(Debug, Clone)]
pub struct SeqCache {
    inputs: Vec<Vec<f32>>,
    /// Final output of the pass.
    pub output: Vec<f32>,
}

/// A chain of layers applied in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sequential {
    layers: Vec<Layer>,
}

impl Sequential {
    /// Creates a network from layers (may be empty = identity).
    pub fn new(layers: Vec<Layer>) -> Self {
        Sequential { layers }
    }

    /// Inference-only forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    /// [`Sequential::forward`] reusing buffers from `scratch`:
    /// intermediate activations are recycled as soon as the next
    /// layer has consumed them.
    pub fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        let mut cur = scratch.take(x.len());
        cur.copy_from_slice(x);
        for l in &self.layers {
            let next = l.forward_with(&cur, scratch);
            scratch.recycle(std::mem::replace(&mut cur, next));
        }
        cur
    }

    /// Forward pass that records the activations needed by
    /// [`Sequential::backward`].
    pub fn forward_cached(&self, x: &[f32]) -> SeqCache {
        kernels::with_thread_scratch(|s| self.forward_cached_with(x, s))
    }

    /// [`Sequential::forward_cached`] reusing buffers from `scratch`.
    ///
    /// Layer inputs are moved into the cache instead of cloned; the
    /// cache still owns plain `Vec`s because BPTT keeps it alive
    /// across the whole sequence.
    pub fn forward_cached_with(&self, x: &[f32], scratch: &mut KernelScratch) -> SeqCache {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut cur = scratch.take(x.len());
        cur.copy_from_slice(x);
        for l in &self.layers {
            let next = l.forward_with(&cur, scratch);
            inputs.push(std::mem::replace(&mut cur, next));
        }
        SeqCache {
            inputs,
            output: cur,
        }
    }

    /// Backward pass through the whole chain.
    pub fn backward(&mut self, cache: &SeqCache, grad_out: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.backward_with(cache, grad_out, s))
    }

    /// [`Sequential::backward`] reusing buffers from `scratch`.
    pub fn backward_with(
        &mut self,
        cache: &SeqCache,
        grad_out: &[f32],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        let mut grad = scratch.take(grad_out.len());
        grad.copy_from_slice(grad_out);
        for (l, x) in self.layers.iter_mut().zip(&cache.inputs).rev() {
            let next = l.backward_with(x, &grad, scratch);
            scratch.recycle(std::mem::replace(&mut grad, next));
        }
        grad
    }

    /// Forward pass that feeds each layer's int8 calibration
    /// statistics as the activations flow through. Must run under an
    /// f32 backend (quant state is absent until `freeze_quant`, so the
    /// arithmetic is the plain forward either way).
    pub fn calibrate_forward_with(&mut self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        let mut cur = scratch.take(x.len());
        cur.copy_from_slice(x);
        for l in &mut self.layers {
            let next = l.calibrate_forward_with(&cur, scratch);
            scratch.recycle(std::mem::replace(&mut cur, next));
        }
        cur
    }

    /// Freezes int8 state on every parameterized layer.
    pub fn freeze_quant(&mut self) {
        for l in &mut self.layers {
            l.freeze_quant();
        }
    }

    /// Drops int8 state and calibration statistics on every layer.
    pub fn clear_quant(&mut self) {
        for l in &mut self.layers {
            l.clear_quant();
        }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the chain is empty (identity function).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Parameterized for Sequential {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

/// The two-input encoder of Fig. 6: a conv branch over the
/// pseudospectrum part of the frame, the periodogram part passed
/// through directly, both merged by fully-connected layers.
///
/// The input frame is the concatenation
/// `[pseudospectrum (split) | periodogram (rest)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TwoBranchEncoder {
    /// Length of the first (conv-branch) part of the input.
    pub split: usize,
    /// Convolutional branch applied to the first part.
    pub branch: Sequential,
    /// Merge network applied to `[branch output | second part]`.
    pub merge: Sequential,
}

/// Cache for [`TwoBranchEncoder::forward_cached`].
#[derive(Debug, Clone)]
pub struct TwoBranchCache {
    branch: SeqCache,
    merge: SeqCache,
    /// Final output of the encoder.
    pub output: Vec<f32>,
}

impl TwoBranchEncoder {
    /// Creates the encoder.
    pub fn new(split: usize, branch: Sequential, merge: Sequential) -> Self {
        TwoBranchEncoder {
            split,
            branch,
            merge,
        }
    }

    /// Inference-only forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() < split`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    /// [`TwoBranchEncoder::forward`] reusing buffers from `scratch`.
    pub fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        assert!(x.len() >= self.split, "input shorter than split point");
        let feat = self.branch.forward_with(&x[..self.split], scratch);
        let mut merged = scratch.take(feat.len() + x.len() - self.split);
        merged[..feat.len()].copy_from_slice(&feat);
        merged[feat.len()..].copy_from_slice(&x[self.split..]);
        scratch.recycle(feat);
        let out = self.merge.forward_with(&merged, scratch);
        scratch.recycle(merged);
        out
    }

    /// Forward pass that feeds both branches' int8 calibration
    /// statistics; see [`Sequential::calibrate_forward_with`].
    pub fn calibrate_forward_with(&mut self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        assert!(x.len() >= self.split, "input shorter than split point");
        let feat = self
            .branch
            .calibrate_forward_with(&x[..self.split], scratch);
        let mut merged = scratch.take(feat.len() + x.len() - self.split);
        merged[..feat.len()].copy_from_slice(&feat);
        merged[feat.len()..].copy_from_slice(&x[self.split..]);
        scratch.recycle(feat);
        let out = self.merge.calibrate_forward_with(&merged, scratch);
        scratch.recycle(merged);
        out
    }

    /// Freezes int8 state on both branches.
    pub fn freeze_quant(&mut self) {
        self.branch.freeze_quant();
        self.merge.freeze_quant();
    }

    /// Drops int8 state and calibration statistics on both branches.
    pub fn clear_quant(&mut self) {
        self.branch.clear_quant();
        self.merge.clear_quant();
    }

    /// Caching forward pass.
    pub fn forward_cached(&self, x: &[f32]) -> TwoBranchCache {
        kernels::with_thread_scratch(|s| self.forward_cached_with(x, s))
    }

    /// [`TwoBranchEncoder::forward_cached`] reusing buffers from
    /// `scratch`.
    pub fn forward_cached_with(&self, x: &[f32], scratch: &mut KernelScratch) -> TwoBranchCache {
        assert!(x.len() >= self.split, "input shorter than split point");
        let branch = self.branch.forward_cached_with(&x[..self.split], scratch);
        let mut merged = scratch.take(branch.output.len() + x.len() - self.split);
        merged[..branch.output.len()].copy_from_slice(&branch.output);
        merged[branch.output.len()..].copy_from_slice(&x[self.split..]);
        let merge = self.merge.forward_cached_with(&merged, scratch);
        scratch.recycle(merged);
        let output = merge.output.clone();
        TwoBranchCache {
            branch,
            merge,
            output,
        }
    }

    /// Backward pass; returns `∂L/∂x` over the full concatenated input.
    pub fn backward(&mut self, cache: &TwoBranchCache, grad_out: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.backward_with(cache, grad_out, s))
    }

    /// [`TwoBranchEncoder::backward`] reusing buffers from `scratch`.
    pub fn backward_with(
        &mut self,
        cache: &TwoBranchCache,
        grad_out: &[f32],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        let grad_merged = self.merge.backward_with(&cache.merge, grad_out, scratch);
        let feat_len = cache.branch.output.len();
        let grad_spec = self
            .branch
            .backward_with(&cache.branch, &grad_merged[..feat_len], scratch);
        let mut gx = grad_spec;
        gx.extend_from_slice(&grad_merged[feat_len..]);
        scratch.recycle(grad_merged);
        gx
    }
}

impl Parameterized for TwoBranchEncoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.branch.visit_params(f);
        self.merge.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference numerical gradient of a scalar loss.
    fn assert_matches_numeric<F>(forward_loss: F, analytic: &[f32], x: &mut [f32], tol: f32)
    where
        F: Fn(&[f32]) -> f32,
    {
        let eps = 1e-3;
        for i in 0..x.len() {
            let orig = x[i];
            x[i] = orig + eps;
            let lp = forward_loss(x);
            x[i] = orig - eps;
            let lm = forward_loss(x);
            x[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - analytic[i]).abs() < tol * (1.0 + num.abs()),
                "grad[{i}]: numeric {num}, analytic {}",
                analytic[i]
            );
        }
    }

    fn sum_loss(y: &[f32]) -> f32 {
        // Loss = Σ y²/2 so grad_out = y.
        y.iter().map(|v| v * v * 0.5).sum()
    }

    #[test]
    fn dense_forward_known_values() {
        let mut d = Dense::new(2, 2, 0);
        d.w = vec![1.0, 2.0, 3.0, 4.0];
        d.b = vec![0.5, -0.5];
        let y = d.forward(&[1.0, 1.0]);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn dense_input_gradient_is_numeric() {
        let d = Dense::new(4, 3, 1);
        let mut x = vec![0.3, -0.2, 0.8, 0.1];
        let y = d.forward(&x);
        let mut dm = d.clone();
        let gx = dm.backward(&x, &y);
        assert_matches_numeric(|x| sum_loss(&d.forward(x)), &gx, &mut x, 1e-2);
    }

    #[test]
    fn dense_weight_gradient_is_numeric() {
        let d = Dense::new(3, 2, 2);
        let x = vec![0.5, -1.0, 0.25];
        let y = d.forward(&x);
        let mut dm = d.clone();
        dm.backward(&x, &y);
        // Numeric gradient wrt each weight.
        let eps = 1e-3;
        let mut probe = d.clone();
        for i in 0..probe.w.len() {
            let orig = probe.w[i];
            probe.w[i] = orig + eps;
            let lp = sum_loss(&probe.forward(&x));
            probe.w[i] = orig - eps;
            let lm = sum_loss(&probe.forward(&x));
            probe.w[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dm.gw[i]).abs() < 1e-2, "w[{i}]");
        }
    }

    #[test]
    fn conv_output_shape() {
        let c = Conv1d::new(2, 10, 3, 3, 2, 0);
        assert_eq!(c.len_out(), 4);
        assert_eq!(c.out_dim(), 12);
        let y = c.forward(&[0.1; 20]);
        assert_eq!(y.len(), 12);
    }

    #[test]
    fn conv_known_values() {
        // Single channel, identity-ish kernel.
        let mut c = Conv1d::new(1, 4, 1, 2, 1, 0);
        c.w = vec![1.0, -1.0];
        c.b = vec![0.0];
        let y = c.forward(&[3.0, 1.0, 4.0, 1.0]);
        assert_eq!(y, vec![2.0, -3.0, 3.0]);
    }

    #[test]
    fn conv_gradients_are_numeric() {
        let c = Conv1d::new(2, 8, 3, 3, 2, 5);
        let mut x: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        let y = c.forward(&x);
        let mut cm = c.clone();
        let gx = cm.backward(&x, &y);
        assert_matches_numeric(|x| sum_loss(&c.forward(x)), &gx, &mut x, 1e-2);
        // Weight gradients.
        let eps = 1e-3;
        let mut probe = c.clone();
        for i in 0..probe.w.len() {
            let orig = probe.w[i];
            probe.w[i] = orig + eps;
            let lp = sum_loss(&probe.forward(&x));
            probe.w[i] = orig - eps;
            let lm = sum_loss(&probe.forward(&x));
            probe.w[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - cm.gw[i]).abs() < 2e-2,
                "w[{i}]: {num} vs {}",
                cm.gw[i]
            );
        }
    }

    #[test]
    fn relu_forward_backward() {
        let l = Layer::relu();
        let y = l.forward(&[-1.0, 0.0, 2.0]);
        assert_eq!(y, vec![0.0, 0.0, 2.0]);
        let mut lm = l.clone();
        let gx = lm.backward(&[-1.0, 0.0, 2.0], &[1.0, 1.0, 1.0]);
        assert_eq!(gx, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn sequential_composition_gradient() {
        let seq = Sequential::new(vec![
            Layer::conv1d(1, 12, 2, 3, 2, 3),
            Layer::relu(),
            Layer::dense(10, 4, 4),
            Layer::relu(),
            Layer::dense(4, 2, 5),
        ]);
        let mut x: Vec<f32> = (0..12).map(|i| (i as f32 * 0.5).cos()).collect();
        let cache = seq.forward_cached(&x);
        let mut sm = seq.clone();
        let gx = sm.backward(&cache, &cache.output);
        assert_matches_numeric(|x| sum_loss(&seq.forward(x)), &gx, &mut x, 2e-2);
    }

    #[test]
    fn sequential_cached_matches_plain() {
        let seq = Sequential::new(vec![Layer::dense(3, 5, 1), Layer::relu()]);
        let x = [0.1, -0.7, 0.4];
        assert_eq!(seq.forward(&x), seq.forward_cached(&x).output);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let seq = Sequential::default();
        assert!(seq.is_empty());
        assert_eq!(seq.forward(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn two_branch_routes_both_inputs() {
        let enc = TwoBranchEncoder::new(
            6,
            Sequential::new(vec![Layer::dense(6, 3, 1), Layer::relu()]),
            Sequential::new(vec![Layer::dense(5, 4, 2)]),
        );
        let x = vec![0.1; 8]; // 6 spec + 2 direct
        let y = enc.forward(&x);
        assert_eq!(y.len(), 4);
        assert_eq!(enc.forward_cached(&x).output, y);
    }

    #[test]
    fn two_branch_gradient_is_numeric() {
        let enc = TwoBranchEncoder::new(
            6,
            Sequential::new(vec![Layer::dense(6, 3, 7), Layer::relu()]),
            Sequential::new(vec![Layer::dense(5, 2, 8)]),
        );
        let mut x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.3).sin()).collect();
        let cache = enc.forward_cached(&x);
        let mut em = enc.clone();
        let gx = em.backward(&cache, &cache.output);
        assert_matches_numeric(|x| sum_loss(&enc.forward(x)), &gx, &mut x, 2e-2);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn dense_rejects_wrong_size() {
        Dense::new(3, 2, 0).forward(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn conv_rejects_oversized_kernel() {
        Conv1d::new(1, 3, 1, 5, 1, 0);
    }
}
