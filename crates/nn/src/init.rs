//! Weight initialisation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier uniform initialisation: `U(±√(6/(fan_in+fan_out)))`.
///
/// Appropriate before tanh/sigmoid nonlinearities (LSTM gates).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, n: usize, seed: u64) -> Vec<f32> {
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1A2B_3C4D);
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

/// He/Kaiming uniform initialisation: `U(±√(6/fan_in))`.
///
/// Appropriate before ReLU nonlinearities (conv/dense stacks).
pub fn he_uniform(fan_in: usize, n: usize, seed: u64) -> Vec<f32> {
    let limit = (6.0 / fan_in as f64).sqrt() as f32;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E6F_7081);
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_limit() {
        let w = xavier_uniform(10, 20, 1000, 1);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
        // Roughly zero-mean.
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        assert!(mean.abs() < 0.05);
    }

    #[test]
    fn he_within_limit() {
        let w = he_uniform(25, 500, 2);
        let limit = (6.0f32 / 25.0).sqrt();
        assert!(w.iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(xavier_uniform(4, 4, 16, 7), xavier_uniform(4, 4, 16, 7));
        assert_ne!(xavier_uniform(4, 4, 16, 7), xavier_uniform(4, 4, 16, 8));
        assert_eq!(he_uniform(4, 16, 7), he_uniform(4, 16, 7));
    }
}
