//! Long Short-Term Memory layers with backpropagation through time.
//!
//! The paper's engine stacks two LSTM layers of 32 memory cells on top
//! of the CNN encoder (Section IV-B2). Each cell carries a scalar state
//! `c` guarded by input/forget/output gates, letting the network keep
//! context across the spectrum-frame sequence — the property the
//! Fig. 17 ablation shows is essential.

//! ## Kernel backends
//!
//! The gate matmuls dispatch on the process-wide
//! [`m2ai_kernels::Backend`]. The fast path batches `W·x_t` for the
//! whole sequence into one `[T × 4H]` GEMM, runs each step's
//! recurrent `U·h_{t-1}` as a fused `[4H × H]` GEMV continuing the
//! same accumulator, and folds BPTT's weight-gradient outer products
//! into two `[4H × T]·[T × dim]` GEMMs after the time loop —
//! preserving the reference accumulation order (ascending inputs,
//! descending time) so results agree to within FMA rounding.

use crate::init::xavier_uniform;
use crate::Parameterized;
use m2ai_kernels::{self as kernels, quant, Backend, KernelScratch};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One LSTM layer.
///
/// Gate order in the stacked weight matrices is `[input, forget,
/// cell-candidate, output]`. The forget-gate bias is initialised to 1,
/// the standard trick to preserve memory early in training.
#[derive(Debug, Clone, PartialEq)]
pub struct Lstm {
    in_dim: usize,
    hidden: usize,
    /// Input weights, `4·hidden × in_dim` row-major.
    w: Vec<f32>,
    /// Recurrent weights, `4·hidden × hidden` row-major.
    u: Vec<f32>,
    /// Biases, `4·hidden`.
    b: Vec<f32>,
    gw: Vec<f32>,
    gu: Vec<f32>,
    gb: Vec<f32>,
    /// Max-abs input frame seen by the calibration pass.
    calib_x: f32,
    /// Max-abs hidden state seen by the calibration pass.
    calib_h: f32,
    /// Frozen int8 state; `None` until `freeze_quant`.
    quant: Option<QuantLstm>,
}

/// Frozen int8 inference state of an LSTM layer. The input and
/// recurrent matmuls carry separate activation scales (`x` ranges are
/// encoder features, `h` is tanh-bounded), each with per-gate-row
/// weight scales.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLstm {
    /// Input weights `4H × in_dim`, quantized per row.
    pub qw: quant::QuantizedMatrix,
    /// Recurrent weights `4H × H`, quantized per row.
    pub qu: quant::QuantizedMatrix,
    /// Per-tensor scale of input frames.
    pub x_scale: f32,
    /// Per-tensor scale of hidden states.
    pub h_scale: f32,
}

/// Per-timestep saved activations.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
}

/// Saved activations of one [`Lstm::forward_sequence`] call.
#[derive(Debug, Clone)]
pub struct LstmCache {
    steps: Vec<StepCache>,
    /// Hidden state after each timestep.
    pub outputs: Vec<Vec<f32>>,
}

impl Lstm {
    /// Creates an LSTM layer with Xavier-uniform weights.
    pub fn new(in_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        for fbias in b.iter_mut().skip(hidden).take(hidden) {
            *fbias = 1.0;
        }
        Lstm {
            in_dim,
            hidden,
            w: xavier_uniform(in_dim, hidden, 4 * hidden * in_dim, seed),
            u: xavier_uniform(hidden, hidden, 4 * hidden * hidden, seed ^ 0xFACE),
            b,
            gw: vec![0.0; 4 * hidden * in_dim],
            gu: vec![0.0; 4 * hidden * hidden],
            gb: vec![0.0; 4 * hidden],
            calib_x: 0.0,
            calib_h: 0.0,
            quant: None,
        }
    }

    /// Calibration: absorbs the activation ranges of one sequence —
    /// the input frames this layer saw and the hidden states it
    /// produced (`outputs` from the same forward pass).
    pub fn observe_sequence(&mut self, xs: &[Vec<f32>], outputs: &[Vec<f32>]) {
        for x in xs {
            self.calib_x = self.calib_x.max(quant::max_abs(x));
        }
        for o in outputs {
            self.calib_h = self.calib_h.max(quant::max_abs(o));
        }
    }

    /// Freezes int8 inference state from the current weights and the
    /// calibrated input/hidden ranges.
    pub fn freeze_quant(&mut self) {
        quant::record_calibration("lstm_x", self.calib_x);
        quant::record_calibration("lstm_h", self.calib_h);
        self.quant = Some(QuantLstm {
            qw: quant::quantize_rows(&self.w, 4 * self.hidden, self.in_dim),
            qu: quant::quantize_rows(&self.u, 4 * self.hidden, self.hidden),
            x_scale: quant::activation_scale(self.calib_x),
            h_scale: quant::activation_scale(self.calib_h),
        });
    }

    /// Drops quantized state and calibration statistics.
    pub fn clear_quant(&mut self) {
        self.calib_x = 0.0;
        self.calib_h = 0.0;
        self.quant = None;
    }

    /// True once `freeze_quant` has produced int8 state.
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of memory cells.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the layer over a sequence from a zero initial state,
    /// returning per-step hidden states and the BPTT cache.
    ///
    /// # Panics
    ///
    /// Panics if any frame's length differs from `in_dim`.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> LstmCache {
        kernels::with_thread_scratch(|s| self.forward_sequence_with(xs, s))
    }

    /// [`Lstm::forward_sequence`] reusing buffers from `scratch`.
    ///
    /// Fast path: `W·x_t` for all timesteps is one `[T × 4H]` GEMM up
    /// front; each step then continues that row's accumulator with
    /// the recurrent `U·h_{t-1}` GEMV and adds the bias last —
    /// exactly the reference chaining (inputs before recurrence,
    /// bias outermost).
    pub fn forward_sequence_with(&self, xs: &[Vec<f32>], scratch: &mut KernelScratch) -> LstmCache {
        if kernels::backend() == Backend::Reference || xs.is_empty() {
            return self.forward_sequence_reference(xs);
        }
        if kernels::backend() == Backend::QuantI8 {
            if let Some(q) = &self.quant {
                return self.forward_sequence_quant(q, xs, scratch);
            }
        }
        let h = self.hidden;
        let t_len = xs.len();
        let mut xflat = scratch.take(t_len * self.in_dim);
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), self.in_dim, "LSTM input size mismatch");
            xflat[t * self.in_dim..(t + 1) * self.in_dim].copy_from_slice(x);
        }
        let mut zw = scratch.take(t_len * 4 * h);
        kernels::gemm_nt(t_len, 4 * h, self.in_dim, &xflat, &self.w, &mut zw);
        let mut zbuf = scratch.take(4 * h);
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let mut steps = Vec::with_capacity(t_len);
        let mut outputs = Vec::with_capacity(t_len);
        for (t, x) in xs.iter().enumerate() {
            zbuf.copy_from_slice(&zw[t * 4 * h..(t + 1) * 4 * h]);
            kernels::gemv(4 * h, h, &self.u, &h_prev, &mut zbuf);
            let mut i = vec![0.0; h];
            let mut f = vec![0.0; h];
            let mut g = vec![0.0; h];
            let mut o = vec![0.0; h];
            let mut c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for k in 0..h {
                i[k] = sigmoid(self.b[k] + zbuf[k]);
                f[k] = sigmoid(self.b[h + k] + zbuf[h + k]);
                g[k] = (self.b[2 * h + k] + zbuf[2 * h + k]).tanh();
                o[k] = sigmoid(self.b[3 * h + k] + zbuf[3 * h + k]);
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
                h_new[k] = o[k] * c[k].tanh();
            }
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            outputs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        scratch.recycle(zbuf);
        scratch.recycle(zw);
        scratch.recycle(xflat);
        LstmCache { steps, outputs }
    }

    /// The int8 sequence path: `W·x` for the whole sequence is one
    /// i8 GEMM (activations quantized once with the frozen `x_scale`);
    /// each step quantizes `h_{t-1}` with `h_scale`, runs the
    /// recurrent i8 GEMV, and combines both integer accumulators in a
    /// single f32 dequant before the gate math. Identical arithmetic
    /// to [`Lstm::step_batch_with`]'s quant branch, so streaming and
    /// replay agree bit-for-bit under [`Backend::QuantI8`] too.
    fn forward_sequence_quant(
        &self,
        q: &QuantLstm,
        xs: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> LstmCache {
        let h = self.hidden;
        let t_len = xs.len();
        let mut xflat = scratch.take(t_len * self.in_dim);
        for (t, x) in xs.iter().enumerate() {
            assert_eq!(x.len(), self.in_dim, "LSTM input size mismatch");
            xflat[t * self.in_dim..(t + 1) * self.in_dim].copy_from_slice(x);
        }
        let mut xi8 = Vec::new();
        quant::quantize_into(&xflat, q.x_scale, &mut xi8);
        let mut zw = vec![0i32; t_len * 4 * h];
        quant::gemm_i8_nt(t_len, 4 * h, self.in_dim, &xi8, &q.qw.q, &mut zw);
        let mut hi8 = Vec::new();
        let mut zu = vec![0i32; 4 * h];
        let mut zbuf = scratch.take(4 * h);
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let mut steps = Vec::with_capacity(t_len);
        let mut outputs = Vec::with_capacity(t_len);
        for (t, x) in xs.iter().enumerate() {
            quant::quantize_into(&h_prev, q.h_scale, &mut hi8);
            zu.fill(0);
            quant::gemm_i8_nt(1, 4 * h, h, &hi8, &q.qu.q, &mut zu);
            for k in 0..4 * h {
                zbuf[k] = zw[t * 4 * h + k] as f32 * (q.x_scale * q.qw.scales[k])
                    + zu[k] as f32 * (q.h_scale * q.qu.scales[k]);
            }
            let mut i = vec![0.0; h];
            let mut f = vec![0.0; h];
            let mut g = vec![0.0; h];
            let mut o = vec![0.0; h];
            let mut c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for k in 0..h {
                i[k] = sigmoid(self.b[k] + zbuf[k]);
                f[k] = sigmoid(self.b[h + k] + zbuf[h + k]);
                g[k] = (self.b[2 * h + k] + zbuf[2 * h + k]).tanh();
                o[k] = sigmoid(self.b[3 * h + k] + zbuf[3 * h + k]);
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
                h_new[k] = o[k] * c[k].tanh();
            }
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            outputs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        scratch.recycle(zbuf);
        scratch.recycle(xflat);
        LstmCache { steps, outputs }
    }

    /// The seed repository's original step loop, bit-for-bit.
    fn forward_sequence_reference(&self, xs: &[Vec<f32>]) -> LstmCache {
        let h = self.hidden;
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        let mut steps = Vec::with_capacity(xs.len());
        let mut outputs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.len(), self.in_dim, "LSTM input size mismatch");
            // Pre-activations z = W x + U h_prev + b, laid out i|f|g|o.
            let mut z = self.b.clone();
            for (r, zr) in z.iter_mut().enumerate() {
                let wrow = &self.w[r * self.in_dim..(r + 1) * self.in_dim];
                let urow = &self.u[r * h..(r + 1) * h];
                let mut acc = 0.0;
                for (wv, xv) in wrow.iter().zip(x) {
                    acc += wv * xv;
                }
                for (uv, hv) in urow.iter().zip(&h_prev) {
                    acc += uv * hv;
                }
                *zr += acc;
            }
            let mut i = vec![0.0; h];
            let mut f = vec![0.0; h];
            let mut g = vec![0.0; h];
            let mut o = vec![0.0; h];
            let mut c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for k in 0..h {
                i[k] = sigmoid(z[k]);
                f[k] = sigmoid(z[h + k]);
                g[k] = z[2 * h + k].tanh();
                o[k] = sigmoid(z[3 * h + k]);
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
                h_new[k] = o[k] * c[k].tanh();
            }
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            outputs.push(h_new.clone());
            h_prev = h_new;
            c_prev = c;
        }
        LstmCache { steps, outputs }
    }

    /// One streaming timestep over `batch` independent sessions.
    ///
    /// `xs` is `[batch × in_dim]` row-major; `h` and `c` are
    /// `[batch × hidden]` carrying each session's previous state on
    /// entry and its new state on return. Rows never interact: row `r`
    /// of the batched GEMMs reduces exactly the chain a solo
    /// `[1 × ·]` step would, so a batched step is bit-identical to
    /// `batch` serial steps — and identical to the corresponding step
    /// of [`Lstm::forward_sequence`] from the same state (inputs
    /// before recurrence, bias outermost, same rounding on either
    /// backend). A one-row batch dispatches to the GEMV microkernels.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step_batch_with(
        &self,
        batch: usize,
        xs: &[f32],
        h: &mut [f32],
        c: &mut [f32],
        scratch: &mut KernelScratch,
    ) {
        let hd = self.hidden;
        assert_eq!(xs.len(), batch * self.in_dim, "LSTM step input mismatch");
        assert_eq!(h.len(), batch * hd, "LSTM step hidden-state mismatch");
        assert_eq!(c.len(), batch * hd, "LSTM step cell-state mismatch");
        let mut z = scratch.take(batch * 4 * hd);
        let quant_path = kernels::backend() == Backend::QuantI8 && self.quant.is_some();
        if quant_path {
            // Same arithmetic as `forward_sequence_quant`: integer
            // accumulators for W·x and U·h, combined in one f32
            // dequant — so a quantized stream matches a quantized
            // replay bit-for-bit.
            let q = self.quant.as_ref().expect("checked above");
            let mut xi8 = Vec::new();
            quant::quantize_into(xs, q.x_scale, &mut xi8);
            let mut accx = vec![0i32; batch * 4 * hd];
            quant::gemm_i8_nt(batch, 4 * hd, self.in_dim, &xi8, &q.qw.q, &mut accx);
            let mut hi8 = Vec::new();
            quant::quantize_into(h, q.h_scale, &mut hi8);
            let mut acch = vec![0i32; batch * 4 * hd];
            quant::gemm_i8_nt(batch, 4 * hd, hd, &hi8, &q.qu.q, &mut acch);
            for r in 0..batch {
                for k in 0..4 * hd {
                    let idx = r * 4 * hd + k;
                    z[idx] = accx[idx] as f32 * (q.x_scale * q.qw.scales[k])
                        + acch[idx] as f32 * (q.h_scale * q.qu.scales[k]);
                }
            }
        } else {
            kernels::gemm_nt(batch, 4 * hd, self.in_dim, xs, &self.w, &mut z);
            kernels::gemm_nt(batch, 4 * hd, hd, h, &self.u, &mut z);
        }
        for r in 0..batch {
            let zrow = &z[r * 4 * hd..(r + 1) * 4 * hd];
            let hrow = &mut h[r * hd..(r + 1) * hd];
            let crow = &mut c[r * hd..(r + 1) * hd];
            for k in 0..hd {
                let i = sigmoid(self.b[k] + zrow[k]);
                let f = sigmoid(self.b[hd + k] + zrow[hd + k]);
                let g = (self.b[2 * hd + k] + zrow[2 * hd + k]).tanh();
                let o = sigmoid(self.b[3 * hd + k] + zrow[3 * hd + k]);
                let cn = f * crow[k] + i * g;
                crow[k] = cn;
                hrow[k] = o * cn.tanh();
            }
        }
        scratch.recycle(z);
    }

    /// BPTT backward pass.
    ///
    /// `grad_outputs[t]` is `∂L/∂h_t` from the layers above; the return
    /// value is `∂L/∂x_t` for the layers below. Parameter gradients
    /// accumulate.
    pub fn backward_sequence(
        &mut self,
        cache: &LstmCache,
        grad_outputs: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        kernels::with_thread_scratch(|s| self.backward_sequence_with(cache, grad_outputs, s))
    }

    /// [`Lstm::backward_sequence`] reusing buffers from `scratch`.
    ///
    /// Fast path: the time loop only does the scalar gate math and
    /// the per-step `Wᵀ`/`Uᵀ` GEMVs; pre-activation gradients and
    /// step inputs are packed into time-reversed `[T × dim]` matrices
    /// so `gw`/`gu` accumulate in two GEMMs afterwards, visiting
    /// timesteps in the same descending order as the reference loop.
    pub fn backward_sequence_with(
        &mut self,
        cache: &LstmCache,
        grad_outputs: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> Vec<Vec<f32>> {
        let h = self.hidden;
        let t_len = cache.steps.len();
        assert_eq!(grad_outputs.len(), t_len, "grad/step count mismatch");
        if kernels::backend() == Backend::Reference || t_len == 0 {
            return self.backward_sequence_reference(cache, grad_outputs);
        }
        let mut grad_xs = vec![vec![0.0; self.in_dim]; t_len];
        // Time-reversed packing: row `t_len-1-t` holds timestep `t`,
        // so the post-loop GEMMs reduce over descending time exactly
        // like the reference accumulation.
        let mut zrev = scratch.take(t_len * 4 * h);
        let mut xrev = scratch.take(t_len * self.in_dim);
        let mut hrev = scratch.take(t_len * h);
        let mut dh_next = scratch.take(h);
        let mut dc_next = scratch.take(h);
        for t in (0..t_len).rev() {
            let srow = t_len - 1 - t;
            let s = &cache.steps[t];
            {
                let zrow = &mut zrev[srow * 4 * h..(srow + 1) * 4 * h];
                for k in 0..h {
                    let dh = grad_outputs[t][k] + dh_next[k];
                    let tc = s.c[k].tanh();
                    let d_o = dh * tc;
                    let dc = dh * s.o[k] * (1.0 - tc * tc) + dc_next[k];
                    let d_i = dc * s.g[k];
                    let d_g = dc * s.i[k];
                    let d_f = dc * s.c_prev[k];
                    dc_next[k] = dc * s.f[k];
                    zrow[k] = d_i * s.i[k] * (1.0 - s.i[k]);
                    zrow[h + k] = d_f * s.f[k] * (1.0 - s.f[k]);
                    zrow[2 * h + k] = d_g * (1.0 - s.g[k] * s.g[k]);
                    zrow[3 * h + k] = d_o * s.o[k] * (1.0 - s.o[k]);
                }
            }
            let zrow = &zrev[srow * 4 * h..(srow + 1) * 4 * h];
            for (gb, &zg) in self.gb.iter_mut().zip(zrow) {
                *gb += zg;
            }
            kernels::gemv_t(4 * h, self.in_dim, &self.w, zrow, &mut grad_xs[t]);
            dh_next.fill(0.0);
            kernels::gemv_t(4 * h, h, &self.u, zrow, &mut dh_next);
            xrev[srow * self.in_dim..(srow + 1) * self.in_dim].copy_from_slice(&s.x);
            hrev[srow * h..(srow + 1) * h].copy_from_slice(&s.h_prev);
        }
        kernels::gemm_tn(4 * h, self.in_dim, t_len, &zrev, &xrev, &mut self.gw);
        kernels::gemm_tn(4 * h, h, t_len, &zrev, &hrev, &mut self.gu);
        scratch.recycle(dc_next);
        scratch.recycle(dh_next);
        scratch.recycle(hrev);
        scratch.recycle(xrev);
        scratch.recycle(zrev);
        grad_xs
    }

    /// The seed repository's original BPTT loop, bit-for-bit.
    fn backward_sequence_reference(
        &mut self,
        cache: &LstmCache,
        grad_outputs: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        let h = self.hidden;
        let t_len = cache.steps.len();
        let mut grad_xs = vec![vec![0.0; self.in_dim]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let s = &cache.steps[t];
            let mut z_grad = vec![0.0; 4 * h];
            let mut dc_prev = vec![0.0; h];
            for k in 0..h {
                let dh = grad_outputs[t][k] + dh_next[k];
                let tc = s.c[k].tanh();
                let d_o = dh * tc;
                let dc = dh * s.o[k] * (1.0 - tc * tc) + dc_next[k];
                let d_i = dc * s.g[k];
                let d_g = dc * s.i[k];
                let d_f = dc * s.c_prev[k];
                dc_prev[k] = dc * s.f[k];
                z_grad[k] = d_i * s.i[k] * (1.0 - s.i[k]);
                z_grad[h + k] = d_f * s.f[k] * (1.0 - s.f[k]);
                z_grad[2 * h + k] = d_g * (1.0 - s.g[k] * s.g[k]);
                z_grad[3 * h + k] = d_o * s.o[k] * (1.0 - s.o[k]);
            }
            let mut dh_prev = vec![0.0; h];
            for (r, &zg) in z_grad.iter().enumerate() {
                if zg == 0.0 {
                    continue;
                }
                self.gb[r] += zg;
                let wrow = &mut self.gw[r * self.in_dim..(r + 1) * self.in_dim];
                for (wi, xv) in wrow.iter_mut().zip(&s.x) {
                    *wi += zg * xv;
                }
                let urow = &mut self.gu[r * h..(r + 1) * h];
                for (ui, hv) in urow.iter_mut().zip(&s.h_prev) {
                    *ui += zg * hv;
                }
                let w_orig = &self.w[r * self.in_dim..(r + 1) * self.in_dim];
                for (gx, wv) in grad_xs[t].iter_mut().zip(w_orig) {
                    *gx += zg * wv;
                }
                let u_orig = &self.u[r * h..(r + 1) * h];
                for (dh, uv) in dh_prev.iter_mut().zip(u_orig) {
                    *dh += zg * uv;
                }
            }
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        grad_xs
    }
}

impl Parameterized for Lstm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.u, &mut self.gu);
        f(&mut self.b, &mut self.gb);
    }
}

/// A stack of LSTM layers, each feeding the next (the paper uses two
/// layers of 32 cells).
#[derive(Debug, Clone, PartialEq)]
pub struct LstmStack {
    layers: Vec<Lstm>,
}

/// Persistent per-session hidden/cell state of an [`LstmStack`].
///
/// This is the "KV cache" of the streaming serving path: instead of
/// replaying a whole window through [`LstmStack::forward_sequence`],
/// a stream advances one frame at a time with
/// [`LstmStack::step_batch_with`], carrying this state between calls.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmStackState {
    /// Hidden state per layer (`hiddens[l]` long).
    h: Vec<Vec<f32>>,
    /// Cell state per layer.
    c: Vec<Vec<f32>>,
}

impl LstmStackState {
    /// Zeroes the state (stream reset after a gap).
    pub fn reset(&mut self) {
        for v in self.h.iter_mut().chain(self.c.iter_mut()) {
            v.fill(0.0);
        }
    }

    /// Number of stacked layers this state carries.
    pub fn n_layers(&self) -> usize {
        self.h.len()
    }

    /// Rebuilds a state from per-layer hidden and cell vectors (the
    /// deserialisation path of a stream checkpoint). Returns `None`
    /// when the layer counts differ or any layer's hidden and cell
    /// lengths disagree — a state that could not have come from
    /// [`LstmStack::zero_state`].
    pub fn from_parts(h: Vec<Vec<f32>>, c: Vec<Vec<f32>>) -> Option<LstmStackState> {
        if h.len() != c.len() || h.iter().zip(&c).any(|(a, b)| a.len() != b.len()) {
            return None;
        }
        Some(LstmStackState { h, c })
    }

    /// Hidden state of layer `l`.
    pub fn hidden(&self, l: usize) -> &[f32] {
        &self.h[l]
    }

    /// Cell state of layer `l`.
    pub fn cell(&self, l: usize) -> &[f32] {
        &self.c[l]
    }
}

/// Cache of a stacked forward pass.
#[derive(Debug, Clone)]
pub struct StackCache {
    caches: Vec<LstmCache>,
    /// Hidden states of the top layer.
    pub outputs: Vec<Vec<f32>>,
}

impl LstmStack {
    /// Creates a stack; `hiddens[i]` is the cell count of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `hiddens` is empty.
    pub fn new(in_dim: usize, hiddens: &[usize], seed: u64) -> Self {
        assert!(!hiddens.is_empty(), "stack needs at least one layer");
        let mut layers = Vec::with_capacity(hiddens.len());
        let mut d = in_dim;
        for (idx, &h) in hiddens.iter().enumerate() {
            layers.push(Lstm::new(d, h, seed.wrapping_add(idx as u64 * 7919)));
            d = h;
        }
        LstmStack { layers }
    }

    /// Output dimension (top layer's cell count).
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").hidden()
    }

    /// Input dimension expected by the bottom layer.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }

    /// Forward over a sequence.
    pub fn forward_sequence(&self, xs: &[Vec<f32>]) -> StackCache {
        kernels::with_thread_scratch(|s| self.forward_sequence_with(xs, s))
    }

    /// [`LstmStack::forward_sequence`] reusing buffers from `scratch`.
    pub fn forward_sequence_with(
        &self,
        xs: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> StackCache {
        let mut caches: Vec<LstmCache> = Vec::with_capacity(self.layers.len());
        for (li, l) in self.layers.iter().enumerate() {
            let cache = match li {
                0 => l.forward_sequence_with(xs, scratch),
                _ => l.forward_sequence_with(&caches[li - 1].outputs, scratch),
            };
            caches.push(cache);
        }
        let outputs = caches.last().expect("non-empty").outputs.clone();
        StackCache { caches, outputs }
    }

    /// Creates a zero [`LstmStackState`] for one stream.
    pub fn zero_state(&self) -> LstmStackState {
        LstmStackState {
            h: self.layers.iter().map(|l| vec![0.0; l.hidden()]).collect(),
            c: self.layers.iter().map(|l| vec![0.0; l.hidden()]).collect(),
        }
    }

    /// One streaming timestep for `batch` independent sessions.
    ///
    /// `xs` is `[batch × in_dim]` row-major; `states[r]` carries
    /// session `r`'s per-layer state and is advanced in place. Returns
    /// the top layer's new hidden states, `[batch × out_dim]`
    /// row-major. Per-session gather/scatter into the batched GEMM
    /// operands is exact copying, so the result is bit-identical to
    /// `batch` serial one-session steps (see
    /// [`Lstm::step_batch_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != batch`, on input shape mismatches,
    /// or if a state was built for a different stack geometry.
    pub fn step_batch_with(
        &self,
        batch: usize,
        xs: &[f32],
        states: &mut [&mut LstmStackState],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        assert_eq!(states.len(), batch, "LSTM step state-count mismatch");
        assert_eq!(xs.len(), batch * self.in_dim(), "LSTM step input mismatch");
        let mut cur = scratch.take(xs.len());
        cur.copy_from_slice(xs);
        for (l, layer) in self.layers.iter().enumerate() {
            let hd = layer.hidden();
            let mut hmat = scratch.take(batch * hd);
            let mut cmat = scratch.take(batch * hd);
            for (r, st) in states.iter().enumerate() {
                assert_eq!(st.h[l].len(), hd, "LSTM state geometry mismatch");
                hmat[r * hd..(r + 1) * hd].copy_from_slice(&st.h[l]);
                cmat[r * hd..(r + 1) * hd].copy_from_slice(&st.c[l]);
            }
            layer.step_batch_with(batch, &cur, &mut hmat, &mut cmat, scratch);
            for (r, st) in states.iter_mut().enumerate() {
                st.h[l].copy_from_slice(&hmat[r * hd..(r + 1) * hd]);
                st.c[l].copy_from_slice(&cmat[r * hd..(r + 1) * hd]);
            }
            scratch.recycle(std::mem::replace(&mut cur, hmat));
            scratch.recycle(cmat);
        }
        cur
    }

    /// Forward over a sequence that also feeds each layer's int8
    /// calibration statistics (input-frame and hidden-state ranges).
    /// Returns the top layer's outputs so the caller can keep
    /// calibrating downstream layers. Must run under an f32 backend.
    pub fn calibrate_sequence_with(
        &mut self,
        xs: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> Vec<Vec<f32>> {
        let mut cur: Vec<Vec<f32>> = xs.to_vec();
        for l in &mut self.layers {
            let cache = l.forward_sequence_with(&cur, scratch);
            l.observe_sequence(&cur, &cache.outputs);
            cur = cache.outputs;
        }
        cur
    }

    /// Freezes int8 state on every layer.
    pub fn freeze_quant(&mut self) {
        for l in &mut self.layers {
            l.freeze_quant();
        }
    }

    /// Drops int8 state and calibration statistics on every layer.
    pub fn clear_quant(&mut self) {
        for l in &mut self.layers {
            l.clear_quant();
        }
    }

    /// Backward over a sequence; returns `∂L/∂x_t`.
    pub fn backward_sequence(
        &mut self,
        cache: &StackCache,
        grad_outputs: &[Vec<f32>],
    ) -> Vec<Vec<f32>> {
        kernels::with_thread_scratch(|s| self.backward_sequence_with(cache, grad_outputs, s))
    }

    /// [`LstmStack::backward_sequence`] reusing buffers from `scratch`.
    pub fn backward_sequence_with(
        &mut self,
        cache: &StackCache,
        grad_outputs: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> Vec<Vec<f32>> {
        let mut grad = grad_outputs.to_vec();
        for (l, c) in self.layers.iter_mut().zip(&cache.caches).rev() {
            grad = l.backward_sequence_with(c, &grad, scratch);
        }
        grad
    }
}

impl Parameterized for LstmStack {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_loss(outputs: &[Vec<f32>]) -> f32 {
        outputs
            .iter()
            .flat_map(|h| h.iter())
            .map(|v| v * v * 0.5)
            .sum()
    }

    #[test]
    fn output_shapes() {
        let l = Lstm::new(3, 5, 1);
        let xs = vec![vec![0.1; 3]; 7];
        let cache = l.forward_sequence(&xs);
        assert_eq!(cache.outputs.len(), 7);
        assert!(cache.outputs.iter().all(|h| h.len() == 5));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let l = Lstm::new(2, 3, 0);
        assert_eq!(&l.b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&l.b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn state_carries_information() {
        // An impulse at t=0 must still influence h at t=5.
        let l = Lstm::new(1, 4, 3);
        let mut quiet = vec![vec![0.0]; 6];
        let silent = l.forward_sequence(&quiet).outputs;
        quiet[0][0] = 1.0;
        let pulsed = l.forward_sequence(&quiet).outputs;
        let diff: f32 = silent[5]
            .iter()
            .zip(&pulsed[5])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "impulse forgotten: diff {diff}");
    }

    #[test]
    fn input_gradients_match_numeric() {
        let l = Lstm::new(2, 3, 5);
        let xs: Vec<Vec<f32>> = (0..4)
            .map(|t| vec![(t as f32 * 0.3).sin(), (t as f32 * 0.7).cos()])
            .collect();
        let cache = l.forward_sequence(&xs);
        let mut lm = l.clone();
        let grads = lm.backward_sequence(&cache, &cache.outputs);
        let eps = 1e-3;
        for t in 0..xs.len() {
            for j in 0..2 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let lp = seq_loss(&l.forward_sequence(&xp).outputs);
                xp[t][j] -= 2.0 * eps;
                let lm_ = seq_loss(&l.forward_sequence(&xp).outputs);
                let num = (lp - lm_) / (2.0 * eps);
                assert!(
                    (num - grads[t][j]).abs() < 1e-2 * (1.0 + num.abs()),
                    "t={t} j={j}: numeric {num}, analytic {}",
                    grads[t][j]
                );
            }
        }
    }

    #[test]
    fn weight_gradients_match_numeric() {
        let l = Lstm::new(2, 2, 9);
        let xs: Vec<Vec<f32>> = (0..3)
            .map(|t| vec![0.2 * t as f32, -0.1 * t as f32 + 0.3])
            .collect();
        let cache = l.forward_sequence(&xs);
        let mut lm = l.clone();
        lm.backward_sequence(&cache, &cache.outputs);
        let eps = 1e-3;
        // Check a sample of W, U and b entries.
        let mut probe = l.clone();
        for idx in [0usize, 3, 7, 11, 15] {
            let orig = probe.w[idx];
            probe.w[idx] = orig + eps;
            let lp = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.w[idx] = orig - eps;
            let lm_ = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.w[idx] = orig;
            let num = (lp - lm_) / (2.0 * eps);
            assert!(
                (num - lm.gw[idx]).abs() < 1e-2 * (1.0 + num.abs()),
                "W[{idx}]: {num} vs {}",
                lm.gw[idx]
            );
        }
        for idx in [0usize, 5, 10, 15] {
            let orig = probe.u[idx];
            probe.u[idx] = orig + eps;
            let lp = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.u[idx] = orig - eps;
            let lm_ = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.u[idx] = orig;
            let num = (lp - lm_) / (2.0 * eps);
            assert!(
                (num - lm.gu[idx]).abs() < 1e-2 * (1.0 + num.abs()),
                "U[{idx}]: {num} vs {}",
                lm.gu[idx]
            );
        }
        for idx in 0..probe.b.len() {
            let orig = probe.b[idx];
            probe.b[idx] = orig + eps;
            let lp = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.b[idx] = orig - eps;
            let lm_ = seq_loss(&probe.forward_sequence(&xs).outputs);
            probe.b[idx] = orig;
            let num = (lp - lm_) / (2.0 * eps);
            assert!(
                (num - lm.gb[idx]).abs() < 1e-2 * (1.0 + num.abs()),
                "b[{idx}]: {num} vs {}",
                lm.gb[idx]
            );
        }
    }

    #[test]
    fn stack_composes_layers() {
        let s = LstmStack::new(3, &[5, 4], 1);
        assert_eq!(s.in_dim(), 3);
        assert_eq!(s.out_dim(), 4);
        let xs = vec![vec![0.2; 3]; 6];
        let cache = s.forward_sequence(&xs);
        assert_eq!(cache.outputs.len(), 6);
        assert!(cache.outputs.iter().all(|h| h.len() == 4));
    }

    #[test]
    fn stack_gradients_match_numeric() {
        let s = LstmStack::new(2, &[3, 2], 11);
        let xs: Vec<Vec<f32>> = (0..3)
            .map(|t| vec![0.4 * (t as f32).sin(), 0.3 * t as f32])
            .collect();
        let cache = s.forward_sequence(&xs);
        let mut sm = s.clone();
        let grads = sm.backward_sequence(&cache, &cache.outputs);
        let eps = 1e-3;
        for t in 0..xs.len() {
            for j in 0..2 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let lp = seq_loss(&s.forward_sequence(&xp).outputs);
                xp[t][j] -= 2.0 * eps;
                let lm_ = seq_loss(&s.forward_sequence(&xp).outputs);
                let num = (lp - lm_) / (2.0 * eps);
                assert!(
                    (num - grads[t][j]).abs() < 1e-2 * (1.0 + num.abs()),
                    "t={t} j={j}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_wrong_frame_size() {
        let l = Lstm::new(3, 2, 0);
        l.forward_sequence(&[vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_stack_panics() {
        LstmStack::new(3, &[], 0);
    }

    #[test]
    fn streaming_steps_match_forward_sequence_bitwise() {
        let s = LstmStack::new(3, &[5, 4], 21);
        let xs: Vec<Vec<f32>> = (0..7)
            .map(|t| (0..3).map(|j| ((t * 3 + j) as f32 * 0.19).sin()).collect())
            .collect();
        let full = s.forward_sequence(&xs);
        let mut state = s.zero_state();
        for (t, x) in xs.iter().enumerate() {
            let h =
                kernels::with_thread_scratch(|scr| s.step_batch_with(1, x, &mut [&mut state], scr));
            assert_eq!(h, full.outputs[t], "step {t} diverged from replay");
        }
    }

    #[test]
    fn batched_step_matches_serial_steps_bitwise() {
        let s = LstmStack::new(2, &[4, 3], 33);
        let batch = 5;
        // Distinct per-session streams, advanced twice.
        let frame = |r: usize, t: usize| -> Vec<f32> {
            (0..2)
                .map(|j| ((r * 17 + t * 5 + j) as f32 * 0.23).cos())
                .collect()
        };
        let mut serial: Vec<LstmStackState> = (0..batch).map(|_| s.zero_state()).collect();
        let mut batched: Vec<LstmStackState> = (0..batch).map(|_| s.zero_state()).collect();
        for t in 0..2 {
            let mut serial_h = Vec::new();
            for (r, st) in serial.iter_mut().enumerate() {
                let h = kernels::with_thread_scratch(|scr| {
                    s.step_batch_with(1, &frame(r, t), &mut [st], scr)
                });
                serial_h.extend(h);
            }
            let xs: Vec<f32> = (0..batch).flat_map(|r| frame(r, t)).collect();
            let mut refs: Vec<&mut LstmStackState> = batched.iter_mut().collect();
            let batched_h =
                kernels::with_thread_scratch(|scr| s.step_batch_with(batch, &xs, &mut refs, scr));
            assert_eq!(batched_h, serial_h, "t={t}: batched != serial");
        }
        assert_eq!(serial, batched);
    }

    #[test]
    fn empty_sequence_is_fine() {
        let l = Lstm::new(2, 2, 0);
        let cache = l.forward_sequence(&[]);
        assert!(cache.outputs.is_empty());
    }
}
