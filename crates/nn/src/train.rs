//! Training loop with data-parallel gradient evaluation.
//!
//! The paper trains for 100 epochs of SGD with gradient-norm scaling on
//! an 80/20 split (Section VI-A). [`fit`] reproduces that regime on the
//! CPU, splitting each minibatch across worker threads: every thread
//! clones the model, accumulates gradients over its shard, and the
//! shards are reduced into the main model before the optimizer step —
//! numerically identical to serial training (up to float association).

use crate::metrics::ConfusionMatrix;
use crate::model::SequenceClassifier;
use crate::optim::Sgd;
use crate::serialize::{load_params, save_params};
use crate::Parameterized;
use m2ai_kernels::KernelScratch;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labelled training sample: a frame sequence and its class.
pub type Sample = (Vec<Vec<f32>>, usize);

/// Training counters (epochs, skipped batches, rollbacks), resolved
/// once per process.
fn fit_counters() -> &'static (m2ai_obs::Counter, m2ai_obs::Counter, m2ai_obs::Counter) {
    static C: std::sync::OnceLock<(m2ai_obs::Counter, m2ai_obs::Counter, m2ai_obs::Counter)> =
        std::sync::OnceLock::new();
    C.get_or_init(|| {
        (
            m2ai_obs::counter(
                "m2ai_nn_fit_epochs_total",
                "training epochs completed by fit()",
                &[],
            ),
            m2ai_obs::counter(
                "m2ai_nn_batches_skipped_total",
                "minibatches skipped for non-finite loss or gradients",
                &[],
            ),
            m2ai_obs::counter(
                "m2ai_nn_rollbacks_total",
                "parameter rollbacks to the last healthy checkpoint",
                &[],
            ),
        )
    })
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set (paper: 100).
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// Global gradient-norm ceiling (the paper's norm scaling).
    pub clip_norm: Option<f32>,
    /// Minibatch size.
    pub batch_size: usize,
    /// Worker threads for gradient evaluation (1 = serial).
    pub n_threads: usize,
    /// Per-epoch learning-rate multiplier (1.0 = constant; 0.985 over
    /// 150 epochs ≈ ×0.1) — tames late-training loss spikes.
    pub lr_decay: f32,
    /// Decoupled L2 weight decay.
    pub weight_decay: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Print a progress line every `n` epochs (`0` = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            lr: 0.05,
            momentum: 0.9,
            clip_norm: Some(5.0),
            batch_size: 16,
            n_threads: 4,
            lr_decay: 1.0,
            weight_decay: 0.0,
            seed: 7,
            log_every: 0,
        }
    }
}

/// Per-epoch training trace returned by [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Minibatches skipped because their loss or gradients were
    /// non-finite (each skip rolls the model back to the last healthy
    /// checkpoint).
    pub skipped_batches: usize,
}

impl TrainReport {
    /// Loss of the final epoch (`None` when no epochs ran).
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// `true` if every parameter value of `model` is finite.
fn params_finite(model: &mut SequenceClassifier) -> bool {
    let mut ok = true;
    model.visit_params(&mut |p, _| ok &= p.iter().all(|v| v.is_finite()));
    ok
}

/// `true` if every gradient value of `model` is finite.
fn grads_finite(model: &mut SequenceClassifier) -> bool {
    let mut ok = true;
    model.visit_params(&mut |_, g| ok &= g.iter().all(|v| v.is_finite()));
    ok
}

/// Trains `model` on `data` in place.
///
/// Non-finite minibatches (NaN/Inf loss or gradients — e.g. corrupted
/// frames that slipped past upstream sanitisation, or a transient
/// blow-up) are *skipped*: the optimizer step is withheld, the model is
/// rolled back to the last healthy checkpoint (via the serialize path),
/// and the skip is counted in [`TrainReport::skipped_batches`].
/// Momentum state is intentionally not rolled back — it decays on its
/// own and re-snapshotting it per batch would double memory traffic.
/// On clean data the loop is bit-identical to the unguarded one.
///
/// # Panics
///
/// Panics if `data` is empty, any sample has no frames, or a label is
/// out of range.
pub fn fit(model: &mut SequenceClassifier, data: &[Sample], cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "training set must not be empty");
    for (frames, label) in data {
        assert!(!frames.is_empty(), "sample with no frames");
        assert!(*label < model.n_classes(), "label out of range");
    }
    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.clip_norm).with_weight_decay(cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let threads = cfg.n_threads.max(1);
    let mut checkpoint = save_params(model);
    let mut skipped_batches = 0usize;
    // One scratch arena for the whole serial training run: im2col,
    // gate and packing buffers are allocated once and reused across
    // every sample of every epoch.
    let mut scratch = KernelScratch::new();

    for epoch in 0..cfg.epochs {
        opt.lr = cfg.lr * cfg.lr_decay.powi(epoch as i32);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut used_samples = 0usize;
        for batch in order.chunks(cfg.batch_size.max(1)) {
            model.zero_grad();
            let batch_loss = if threads == 1 || batch.len() == 1 {
                let mut loss = 0.0f64;
                for &i in batch {
                    loss +=
                        model.loss_and_backprop_with(&data[i].0, data[i].1, &mut scratch) as f64;
                }
                loss
            } else {
                parallel_grads(model, data, batch, threads)
            };
            if !batch_loss.is_finite() || !grads_finite(model) {
                skipped_batches += 1;
                let (_, skips, rollbacks) = fit_counters();
                skips.inc();
                rollbacks.inc();
                load_params(model, &checkpoint)
                    .expect("rollback checkpoint must match its own model");
                if cfg.log_every > 0 {
                    eprintln!(
                        "epoch {:>3}: skipped non-finite batch (rolled back)",
                        epoch + 1
                    );
                }
                continue;
            }
            epoch_loss += batch_loss;
            used_samples += batch.len();
            opt.step(model, 1.0 / batch.len() as f32);
        }
        // Refresh the rollback point only from a healthy state; a
        // diverged epoch keeps the previous checkpoint alive.
        if params_finite(model) {
            checkpoint = save_params(model);
        } else {
            fit_counters().2.inc();
            load_params(model, &checkpoint).expect("rollback checkpoint must match its own model");
        }
        fit_counters().0.inc();
        let mean = (epoch_loss / used_samples.max(1) as f64) as f32;
        epoch_losses.push(mean);
        if cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0 {
            eprintln!("epoch {:>3}: loss {:.4}", epoch + 1, mean);
        }
    }
    TrainReport {
        epoch_losses,
        skipped_batches,
    }
}

/// Evaluates gradients for `batch` across `threads` workers, reducing
/// into `model`'s gradient buffers. Returns the summed loss.
fn parallel_grads(
    model: &mut SequenceClassifier,
    data: &[Sample],
    batch: &[usize],
    threads: usize,
) -> f64 {
    let n_shards = threads.min(batch.len());
    let shards: Vec<&[usize]> = batch.chunks(batch.len().div_ceil(n_shards)).collect();
    let template = model.clone();
    let results: Vec<(SequenceClassifier, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .map(|shard| {
                let mut worker = template.clone();
                scope.spawn(move || {
                    worker.zero_grad();
                    // Worker threads each carry their own arena; the
                    // thread-local fallback would work too, but an
                    // explicit one keeps the reuse visible.
                    let mut scratch = KernelScratch::new();
                    let mut loss = 0.0f64;
                    for &i in *shard {
                        loss += worker.loss_and_backprop_with(&data[i].0, data[i].1, &mut scratch)
                            as f64;
                    }
                    (worker, loss)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("training worker panicked"))
            .collect()
    });
    let mut total = 0.0;
    for (mut worker, loss) in results {
        model.accumulate_grads_from(&mut worker);
        total += loss;
    }
    total
}

/// Classification accuracy of `model` over `data`.
///
/// A sample the model cannot score (empty sequence, non-finite
/// probabilities) counts as wrong rather than panicking — degraded
/// inputs must degrade accuracy, not crash evaluation.
pub fn evaluate(model: &SequenceClassifier, data: &[Sample]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let correct = data
        .iter()
        .filter(|(frames, label)| model.try_predict(frames) == Ok(*label))
        .count();
    correct as f64 / data.len() as f64
}

/// Confusion matrix of `model` over `data`. Unscorable samples (see
/// [`evaluate`]) are omitted from the matrix.
pub fn confusion(model: &SequenceClassifier, data: &[Sample]) -> ConfusionMatrix {
    let mut cm = ConfusionMatrix::new(model.n_classes());
    for (frames, label) in data {
        if let Ok(pred) = model.try_predict(frames) {
            cm.record(*label, pred);
        }
    }
    cm
}

/// Splits `data` into `(train, test)` with `test_fraction` held out,
/// shuffled deterministically. Used for the paper's 80/20 protocol.
///
/// # Panics
///
/// Panics unless `0.0 < test_fraction < 1.0`.
pub fn train_test_split(
    mut data: Vec<Sample>,
    test_fraction: f64,
    seed: u64,
) -> (Vec<Sample>, Vec<Sample>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test_fraction must be in (0, 1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    data.shuffle(&mut rng);
    let n_test = ((data.len() as f64) * test_fraction).round() as usize;
    let n_test = n_test.clamp(1, data.len().saturating_sub(1).max(1));
    let test = data.split_off(data.len() - n_test);
    (data, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Sequential};
    use crate::lstm::LstmStack;

    /// Linearly separable 3-class toy sequences.
    fn toy_data(n_per_class: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        for c in 0..3usize {
            for k in 0..n_per_class {
                let frames: Vec<Vec<f32>> = (0..4)
                    .map(|t| {
                        let jitter = ((k * 7 + t) % 5) as f32 * 0.02;
                        let mut f = vec![jitter; 3];
                        f[c] = 1.0 + jitter;
                        f
                    })
                    .collect();
                out.push((frames, c));
            }
        }
        out
    }

    fn toy_model(seed: u64) -> SequenceClassifier {
        let encoder = Sequential::new(vec![Layer::dense(3, 8, seed), Layer::relu()]);
        SequenceClassifier::new(encoder, LstmStack::new(8, &[6], seed), 3, seed)
    }

    #[test]
    fn fit_reaches_high_accuracy() {
        let data = toy_data(8);
        let mut model = toy_model(1);
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            n_threads: 1,
            ..TrainConfig::default()
        };
        let report = fit(&mut model, &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 40);
        assert!(report.final_loss().unwrap() < report.epoch_losses[0]);
        assert!(evaluate(&model, &data) > 0.95);
    }

    #[test]
    fn parallel_matches_serial_in_quality() {
        let data = toy_data(6);
        let cfg_serial = TrainConfig {
            epochs: 25,
            batch_size: 6,
            n_threads: 1,
            ..TrainConfig::default()
        };
        let cfg_par = TrainConfig {
            n_threads: 3,
            ..cfg_serial.clone()
        };
        let mut serial = toy_model(3);
        let mut parallel = toy_model(3);
        fit(&mut serial, &data, &cfg_serial);
        fit(&mut parallel, &data, &cfg_par);
        // Shard reduction is order-sensitive in float math, so demand
        // equal *quality*, not bitwise equality.
        assert!(evaluate(&serial, &data) > 0.9);
        assert!(evaluate(&parallel, &data) > 0.9);
    }

    #[test]
    fn confusion_diagonal_after_training() {
        let data = toy_data(5);
        let mut model = toy_model(5);
        fit(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 40,
                n_threads: 1,
                ..TrainConfig::default()
            },
        );
        let cm = confusion(&model, &data);
        assert!(cm.accuracy() > 0.9);
        assert_eq!(cm.total() as usize, data.len());
    }

    #[test]
    fn split_is_disjoint_and_sized() {
        let data = toy_data(10); // 30 samples
        let (train, test) = train_test_split(data, 0.2, 9);
        assert_eq!(train.len(), 24);
        assert_eq!(test.len(), 6);
    }

    #[test]
    fn split_deterministic() {
        let (a_train, _) = train_test_split(toy_data(4), 0.25, 11);
        let (b_train, _) = train_test_split(toy_data(4), 0.25, 11);
        assert_eq!(a_train, b_train);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn bad_fraction_panics() {
        train_test_split(toy_data(2), 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_data_panics() {
        fit(&mut toy_model(0), &[], &TrainConfig::default());
    }

    #[test]
    fn evaluate_empty_is_zero() {
        assert_eq!(evaluate(&toy_model(0), &[]), 0.0);
    }

    #[test]
    fn nan_batches_are_skipped_with_rollback() {
        let mut data = toy_data(6);
        // Poison a few samples with NaN features: their batches must be
        // skipped, not detonate the parameters.
        for poisoned in [1usize, 8, 15] {
            data[poisoned].0[0][0] = f32::NAN;
        }
        let mut model = toy_model(2);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 4,
            n_threads: 1,
            ..TrainConfig::default()
        };
        let report = fit(&mut model, &data, &cfg);
        assert!(report.skipped_batches > 0, "poisoned batches must skip");
        assert!(report.final_loss().unwrap().is_finite());
        let mut all_finite = true;
        model.visit_params(&mut |p, _| all_finite &= p.iter().all(|v| v.is_finite()));
        assert!(all_finite, "parameters must stay finite");
        // The clean samples still train to a useful model.
        let clean: Vec<Sample> = toy_data(6)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| ![1usize, 8, 15].contains(i))
            .map(|(_, s)| s)
            .collect();
        assert!(evaluate(&model, &clean) > 0.8);
    }

    #[test]
    fn clean_training_reports_zero_skips() {
        let data = toy_data(4);
        let mut model = toy_model(9);
        let report = fit(
            &mut model,
            &data,
            &TrainConfig {
                epochs: 5,
                n_threads: 1,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.skipped_batches, 0);
    }

    #[test]
    fn evaluate_tolerates_unscorable_models() {
        // A diverged model scores nothing: 0% accuracy, empty matrix —
        // but no panic.
        let mut model = toy_model(4);
        model.visit_params(&mut |p, _| p.iter_mut().for_each(|v| *v = f32::NAN));
        let data = toy_data(2);
        assert_eq!(evaluate(&model, &data), 0.0);
        assert_eq!(confusion(&model, &data).total() as usize, 0);
    }
}
