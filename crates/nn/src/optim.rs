//! Optimizers: SGD with momentum and gradient-norm scaling, and Adam.
//!
//! The paper trains with stochastic gradient descent and "scales the
//! norm of the gradient" to combat exploding gradients (Section VI-A);
//! [`Sgd`] implements exactly that. [`Adam`] is provided for the
//! extension experiments.

use crate::Parameterized;

/// Stochastic gradient descent with momentum and global-norm clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// If set, the global gradient norm is scaled down to this value
    /// when it exceeds it.
    pub clip_norm: Option<f32>,
    /// Decoupled L2 weight decay applied at each step (0 disables).
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum < 0` or `clip_norm <= 0`.
    pub fn new(lr: f32, momentum: f32, clip_norm: Option<f32>) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(momentum >= 0.0, "momentum must be non-negative");
        if let Some(c) = clip_norm {
            assert!(c > 0.0, "clip_norm must be positive");
        }
        Sgd {
            lr,
            momentum,
            clip_norm,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Sets decoupled weight decay, returning `self` for chaining.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Applies one update. `grad_scale` multiplies every gradient first
    /// (use `1/batch_size` for mean-of-sum gradients). Gradients are
    /// left untouched; call [`Parameterized::zero_grad`] before the
    /// next accumulation.
    pub fn step(&mut self, model: &mut dyn Parameterized, grad_scale: f32) {
        // Global norm after scaling.
        let mut norm_sq = 0.0f32;
        model.visit_params(&mut |_, g| {
            norm_sq += g.iter().map(|v| v * grad_scale).map(|v| v * v).sum::<f32>();
        });
        let norm = norm_sq.sqrt();
        let clip_scale = match self.clip_norm {
            Some(c) if norm > c => c / norm,
            _ => 1.0,
        };
        let eff = grad_scale * clip_scale;

        if self.velocity.is_empty() {
            model.visit_params(&mut |p, _| self.velocity.push(vec![0.0; p.len()]));
        }
        let mut idx = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            let v = &mut velocity[idx];
            assert_eq!(v.len(), p.len(), "optimizer bound to a different model");
            let shrink = 1.0 - lr * wd;
            for i in 0..p.len() {
                v[i] = mu * v[i] + g[i] * eff;
                p[i] = p[i] * shrink - lr * v[i];
            }
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba 2015) with optional norm clipping.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Optional global-norm clip.
    pub clip_norm: Option<f32>,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32, clip_norm: Option<f32>) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update; see [`Sgd::step`] for `grad_scale`.
    pub fn step(&mut self, model: &mut dyn Parameterized, grad_scale: f32) {
        let mut norm_sq = 0.0f32;
        model.visit_params(&mut |_, g| {
            norm_sq += g.iter().map(|v| v * grad_scale).map(|v| v * v).sum::<f32>();
        });
        let norm = norm_sq.sqrt();
        let clip_scale = match self.clip_norm {
            Some(c) if norm > c => c / norm,
            _ => 1.0,
        };
        let eff = grad_scale * clip_scale;
        if self.m.is_empty() {
            model.visit_params(&mut |p, _| {
                self.m.push(vec![0.0; p.len()]);
                self.v.push(vec![0.0; p.len()]);
            });
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |p, g| {
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            for i in 0..p.len() {
                let gi = g[i] * eff;
                m[i] = b1 * m[i] + (1.0 - b1) * gi;
                v[i] = b2 * v[i] + (1.0 - b2) * gi * gi;
                let mh = m[i] / bc1;
                let vh = v[i] / bc2;
                p[i] -= lr * mh / (vh.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Sequential};

    /// Minimises ‖Wx − y‖² for a fixed (x, y) pair.
    fn toy_problem() -> (Sequential, Vec<f32>, Vec<f32>) {
        let model = Sequential::new(vec![Layer::dense(2, 2, 42)]);
        (model, vec![1.0, -0.5], vec![0.3, 0.7])
    }

    fn loss_and_grads(model: &mut Sequential, x: &[f32], y: &[f32]) -> f32 {
        let cache = model.forward_cached(x);
        let grad: Vec<f32> = cache.output.iter().zip(y).map(|(o, t)| o - t).collect();
        let loss: f32 = grad.iter().map(|g| g * g * 0.5).sum();
        model.backward(&cache, &grad);
        loss
    }

    #[test]
    fn sgd_descends() {
        let (mut model, x, y) = toy_problem();
        let mut opt = Sgd::new(0.1, 0.0, None);
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            model.zero_grad();
            let loss = loss_and_grads(&mut model, &x, &y);
            assert!(loss <= last + 1e-6, "loss increased: {loss} > {last}");
            last = loss;
            opt.step(&mut model, 1.0);
        }
        assert!(last < 1e-3, "did not converge: {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let (mut plain_model, x, y) = toy_problem();
        let mut momentum_model = plain_model.clone();
        let mut plain = Sgd::new(0.02, 0.0, None);
        let mut with_mu = Sgd::new(0.02, 0.9, None);
        let mut plain_loss = 0.0;
        let mut mu_loss = 0.0;
        for _ in 0..30 {
            plain_model.zero_grad();
            plain_loss = loss_and_grads(&mut plain_model, &x, &y);
            plain.step(&mut plain_model, 1.0);
            momentum_model.zero_grad();
            mu_loss = loss_and_grads(&mut momentum_model, &x, &y);
            with_mu.step(&mut momentum_model, 1.0);
        }
        assert!(
            mu_loss < plain_loss,
            "momentum {mu_loss} vs plain {plain_loss}"
        );
    }

    #[test]
    fn clipping_limits_update_size() {
        let (mut model, _, _) = toy_problem();
        // Inject a huge gradient.
        model.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 1e6));
        let before: Vec<f32> = {
            let mut vals = Vec::new();
            model.visit_params(&mut |p, _| vals.extend_from_slice(p));
            vals
        };
        let mut opt = Sgd::new(0.1, 0.0, Some(1.0));
        opt.step(&mut model, 1.0);
        let mut after = Vec::new();
        model.visit_params(&mut |p, _| after.extend_from_slice(p));
        let step_norm: f32 = before
            .iter()
            .zip(&after)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        // ‖update‖ = lr · clip = 0.1.
        assert!((step_norm - 0.1).abs() < 1e-4, "step norm {step_norm}");
    }

    #[test]
    fn adam_descends() {
        let (mut model, x, y) = toy_problem();
        let mut opt = Adam::new(0.05, None);
        for _ in 0..100 {
            model.zero_grad();
            loss_and_grads(&mut model, &x, &y);
            opt.step(&mut model, 1.0);
        }
        model.zero_grad();
        let final_loss = loss_and_grads(&mut model, &x, &y);
        assert!(final_loss < 1e-3, "adam did not converge: {final_loss}");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0, None);
    }

    #[test]
    fn grad_scale_averages_batch() {
        let (mut a, x, y) = toy_problem();
        let mut b = a.clone();
        // Model a: one sample, scale 1. Model b: same sample twice, scale 0.5.
        let mut opt_a = Sgd::new(0.1, 0.0, None);
        let mut opt_b = Sgd::new(0.1, 0.0, None);
        a.zero_grad();
        loss_and_grads(&mut a, &x, &y);
        opt_a.step(&mut a, 1.0);
        b.zero_grad();
        loss_and_grads(&mut b, &x, &y);
        loss_and_grads(&mut b, &x, &y);
        opt_b.step(&mut b, 0.5);
        let mut pa = Vec::new();
        a.visit_params(&mut |p, _| pa.extend_from_slice(p));
        let mut pb = Vec::new();
        b.visit_params(&mut |p, _| pb.extend_from_slice(p));
        for (u, v) in pa.iter().zip(&pb) {
            assert!((u - v).abs() < 1e-6);
        }
    }
}
