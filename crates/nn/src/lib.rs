//! # m2ai-nn — a from-scratch neural-network engine
//!
//! The paper trains its CNN+LSTM engine in Keras/TensorFlow on GPUs; no
//! mature Rust equivalent is assumed here, so this crate implements the
//! required machinery directly:
//!
//! * [`layers`] — `Dense`, `Conv1d`, `ReLU` and a two-branch merge
//!   (pseudospectrum conv branch + periodogram dense branch, Fig. 6),
//!   composed by [`layers::Sequential`];
//! * [`lstm`] — single and stacked LSTM layers with full
//!   backpropagation-through-time;
//! * [`model`] — [`model::SequenceClassifier`], the CNN→LSTM→softmax
//!   topology with a per-frame softmax head (Section IV-C);
//! * [`loss`] — softmax cross-entropy (Eq. 17);
//! * [`optim`] — SGD with momentum and gradient-norm scaling (the
//!   paper's anti-exploding-gradient measure) plus Adam;
//! * [`train`] — minibatch training with multi-threaded data-parallel
//!   gradient evaluation, dataset splitting, early metrics;
//! * [`metrics`] — accuracy and confusion matrices (Table I);
//! * [`serialize`] — a small self-describing binary checkpoint format;
//! * [`error`] — typed errors for data-dependent failures (empty
//!   sequences, non-finite outputs), backing the graceful-degradation
//!   contract of the streaming pipeline.
//!
//! Every differentiable component is validated against numerical
//! gradients in its unit tests.
//!
//! # Example
//!
//! ```
//! use m2ai_nn::layers::{Dense, Layer, Sequential};
//! use m2ai_nn::lstm::LstmStack;
//! use m2ai_nn::model::SequenceClassifier;
//!
//! // Tiny model: 8-dim frames -> 4 hidden -> 3 classes.
//! let encoder = Sequential::new(vec![
//!     Layer::dense(8, 4, 1),
//!     Layer::relu(),
//! ]);
//! let lstm = LstmStack::new(4, &[4], 2);
//! let mut model = SequenceClassifier::new(encoder, lstm, 3, 3);
//! let frames = vec![vec![0.1; 8]; 5];
//! let probs = model.predict_proba(&frames);
//! assert_eq!(probs.len(), 3);
//! assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod init;
pub mod layers;
pub mod loss;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod train;

/// Visitor over a component's trainable parameters and their gradients.
///
/// Optimizers and the data-parallel trainer use this to walk every
/// `(parameter, gradient)` pair of a model without knowing its
/// structure.
pub trait Parameterized {
    /// Calls `f(params, grads)` for every parameter block.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Sets every gradient to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Euclidean norm of the full gradient vector.
    fn grad_norm(&mut self) -> f32 {
        let mut s = 0.0f32;
        self.visit_params(&mut |_, g| s += g.iter().map(|v| v * v).sum::<f32>());
        s.sqrt()
    }

    /// Adds `other`'s gradients into this component's gradients.
    ///
    /// Both components must have identical structure (e.g. clones of
    /// the same model) — used to reduce data-parallel shards.
    fn accumulate_grads_from(&mut self, other: &mut dyn Parameterized) {
        let mut theirs: Vec<Vec<f32>> = Vec::new();
        other.visit_params(&mut |_, g| theirs.push(g.to_vec()));
        let mut i = 0;
        self.visit_params(&mut |_, g| {
            for (a, b) in g.iter_mut().zip(&theirs[i]) {
                *a += *b;
            }
            i += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, Sequential};

    #[test]
    fn zero_grad_and_param_count() {
        let mut seq = Sequential::new(vec![Layer::dense(3, 2, 0)]);
        assert_eq!(seq.param_count(), 3 * 2 + 2);
        seq.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 1.0));
        assert!(seq.grad_norm() > 0.0);
        seq.zero_grad();
        assert_eq!(seq.grad_norm(), 0.0);
    }

    #[test]
    fn accumulate_grads() {
        let mut a = Sequential::new(vec![Layer::Dense(Dense::new(2, 2, 1))]);
        let mut b = a.clone();
        b.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 2.0));
        a.accumulate_grads_from(&mut b);
        let mut total = 0.0;
        a.visit_params(&mut |_, g| total += g.iter().sum::<f32>());
        assert_eq!(total, 2.0 * (2 * 2 + 2) as f32);
    }
}
