//! Softmax and cross-entropy (the paper's Eq. 17 objective).

/// Numerically-stable softmax.
///
/// Returns a probability vector summing to 1; an empty input yields an
/// empty output.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().cloned().fold(f32::MIN, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// Implements `E = −ln Pr(y | x)` (Eq. 17 for a single sample) with the
/// standard combined gradient `p − one_hot(label)`.
///
/// # Panics
///
/// Panics if `label >= logits.len()` or `logits` is empty.
pub fn softmax_cross_entropy(logits: &[f32], label: usize) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "logits must not be empty");
    assert!(label < logits.len(), "label out of range");
    let probs = softmax(logits);
    let loss = -probs[label].max(1e-12).ln();
    let mut grad = probs;
    grad[label] -= 1.0;
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[101.0, 102.0, 103.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extremes() {
        let p = softmax(&[1000.0, -1000.0]);
        assert!((p[0] - 1.0).abs() < 1e-6);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let (loss, _) = softmax_cross_entropy(&[20.0, 0.0, 0.0], 0);
        assert!(loss < 1e-3);
        let (bad_loss, _) = softmax_cross_entropy(&[20.0, 0.0, 0.0], 1);
        assert!(bad_loss > 5.0);
    }

    #[test]
    fn uniform_logits_give_log_n() {
        let (loss, _) = softmax_cross_entropy(&[0.0; 4], 2);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_numeric() {
        let logits = [0.5f32, -0.3, 1.2, 0.0];
        let label = 2;
        let (_, grad) = softmax_cross_entropy(&logits, label);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits;
            lp[i] += eps;
            let (up, _) = softmax_cross_entropy(&lp, label);
            lp[i] -= 2.0 * eps;
            let (down, _) = softmax_cross_entropy(&lp, label);
            let num = (up - down) / (2.0 * eps);
            assert!((num - grad[i]).abs() < 1e-3, "grad[{i}]");
        }
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, grad) = softmax_cross_entropy(&[0.1, 0.9, -0.4], 1);
        assert!(grad.iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn label_out_of_range_panics() {
        softmax_cross_entropy(&[0.0, 1.0], 2);
    }
}
