//! Evaluation metrics: accuracy and confusion matrices (Table I).

/// A square confusion matrix over `n_classes` labels.
///
/// Rows are predicted labels, columns actual labels — the layout of the
/// paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    /// counts[predicted * n + actual]
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either label is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n_classes && predicted < self.n_classes);
        self.counts[predicted * self.n_classes + actual] += 1;
    }

    /// Count of samples with the given actual label predicted as
    /// `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[predicted * self.n_classes + actual]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass); 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes)
            .map(|i| self.counts[i * self.n_classes + i])
            .sum();
        correct as f64 / total as f64
    }

    /// Per-class recall: fraction of each actual class predicted
    /// correctly (`None` if the class never appeared).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: u64 = (0..self.n_classes).map(|p| self.count(class, p)).sum();
        if total == 0 {
            return None;
        }
        Some(self.count(class, class) as f64 / total as f64)
    }

    /// Per-class precision (`None` if the class was never predicted).
    pub fn precision(&self, class: usize) -> Option<f64> {
        let total: u64 = (0..self.n_classes).map(|a| self.count(a, class)).sum();
        if total == 0 {
            return None;
        }
        Some(self.count(class, class) as f64 / total as f64)
    }

    /// Column-normalised percentages, Table-I style: entry `(p, a)` is
    /// the percentage of actual-class-`a` samples predicted as `p`.
    pub fn percentages(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.n_classes]; self.n_classes];
        for a in 0..self.n_classes {
            let col_total: u64 = (0..self.n_classes).map(|p| self.count(a, p)).sum();
            if col_total == 0 {
                continue;
            }
            for (p, row) in out.iter_mut().enumerate() {
                row[a] = 100.0 * self.count(a, p) as f64 / col_total as f64;
            }
        }
        out
    }
}

impl std::fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = self.percentages();
        write!(f, "pred\\act ")?;
        for a in 0..self.n_classes {
            write!(f, " A{:02}", a + 1)?;
        }
        writeln!(f)?;
        for (p, row) in pct.iter().enumerate() {
            write!(f, "  A{:02}    ", p + 1)?;
            for v in row {
                write!(f, " {v:3.0}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Accuracy of `(actual, predicted)` pairs; 0 for an empty slice.
pub fn accuracy(pairs: &[(usize, usize)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().filter(|(a, p)| a == p).count() as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let mut cm = ConfusionMatrix::new(3);
        for c in 0..3 {
            for _ in 0..5 {
                cm.record(c, c);
            }
        }
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.total(), 15);
        for c in 0..3 {
            assert_eq!(cm.recall(c), Some(1.0));
            assert_eq!(cm.precision(c), Some(1.0));
        }
    }

    #[test]
    fn mixed_predictions() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1), Some(1.0));
        assert_eq!(cm.precision(1), Some(0.5));
    }

    #[test]
    fn percentages_sum_to_100_per_column() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 0);
        let pct = cm.percentages();
        #[allow(clippy::needless_range_loop)] // column-major walk of a row-major matrix
        for a in 0..3 {
            let col: f64 = (0..3).map(|p| pct[p][a]).sum();
            if a == 2 {
                // actual class 2 appeared once
                assert!((col - 100.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_matrix_behaviour() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.recall(0), None);
        assert_eq!(cm.precision(0), None);
    }

    #[test]
    fn display_contains_every_class() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(1, 1);
        let s = cm.to_string();
        assert!(s.contains("A01") && s.contains("A03"));
    }

    #[test]
    fn accuracy_helper() {
        assert_eq!(accuracy(&[]), 0.0);
        assert_eq!(accuracy(&[(1, 1), (2, 0)]), 0.5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_record_panics() {
        ConfusionMatrix::new(2).record(2, 0);
    }
}
