//! The CNN→LSTM→softmax sequence classifier (Fig. 6).
//!
//! A [`SequenceClassifier`] applies a per-frame encoder (the CNN; shared
//! weights across timesteps), feeds the encoded frames to a stacked
//! LSTM, and attaches a softmax head *at every frame* ("a softmax
//! classifier at the output layer is used to make a prediction at every
//! spectrum frame", Section IV-B2). The training loss is the mean
//! per-frame cross-entropy; inference averages the per-frame class
//! probabilities.
//!
//! The Fig. 17 ablations fall out of the same type:
//! * **CNN-only** — construct with [`SequenceClassifier::without_lstm`];
//! * **LSTM-only** — use an empty [`Sequential`] encoder (identity).

use crate::error::Error;
use crate::layers::{Dense, SeqCache, Sequential, TwoBranchCache, TwoBranchEncoder};
use crate::loss::{softmax, softmax_cross_entropy};
use crate::lstm::{LstmStack, LstmStackState};
use crate::serialize::CheckpointError;
use crate::Parameterized;
use m2ai_kernels::{self as kernels, KernelScratch};
use std::collections::VecDeque;

/// Forward-latency histograms for the two inference paths (whole-window
/// replay vs incremental streaming step), resolved once per process.
fn forward_latency(path: &'static str) -> m2ai_obs::Histogram {
    static H: std::sync::OnceLock<(m2ai_obs::Histogram, m2ai_obs::Histogram)> =
        std::sync::OnceLock::new();
    let (replay, step) = H.get_or_init(|| {
        let help = "model forward-pass wall time by inference path";
        let bounds = m2ai_obs::latency_buckets();
        (
            m2ai_obs::histogram(
                "m2ai_nn_forward_seconds",
                help,
                &[("path", "replay")],
                &bounds,
            ),
            m2ai_obs::histogram(
                "m2ai_nn_forward_seconds",
                help,
                &[("path", "step")],
                &bounds,
            ),
        )
    });
    match path {
        "replay" => replay.clone(),
        _ => step.clone(),
    }
}

/// Magic bytes of a serialised [`StreamState`] (distinct from the
/// `b"M2AI"` parameter-checkpoint magic so the two formats cannot be
/// confused).
const STREAM_MAGIC: &[u8; 4] = b"M2SS";
/// Version of the [`StreamState`] wire format.
const STREAM_VERSION: u32 = 1;

/// Per-frame encoder: a plain layer chain or the two-branch merge.
#[derive(Debug, Clone, PartialEq)]
pub enum Encoder {
    /// Single-input chain (possibly empty = identity).
    Sequential(Sequential),
    /// Pseudospectrum + periodogram two-branch encoder.
    TwoBranch(TwoBranchEncoder),
}

/// Cache produced by [`Encoder::forward_cached`].
#[derive(Debug, Clone)]
pub enum EncoderCache {
    /// Cache of a sequential encoder.
    Sequential(SeqCache),
    /// Cache of a two-branch encoder.
    TwoBranch(TwoBranchCache),
}

impl Encoder {
    /// Inference-only forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.forward_with(x, s))
    }

    /// [`Encoder::forward`] reusing buffers from `scratch`.
    pub fn forward_with(&self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        match self {
            Encoder::Sequential(s) => s.forward_with(x, scratch),
            Encoder::TwoBranch(t) => t.forward_with(x, scratch),
        }
    }

    /// Forward pass that also feeds the layers' int8 calibration
    /// statistics; see [`Sequential::calibrate_forward_with`].
    pub fn calibrate_forward_with(&mut self, x: &[f32], scratch: &mut KernelScratch) -> Vec<f32> {
        match self {
            Encoder::Sequential(s) => s.calibrate_forward_with(x, scratch),
            Encoder::TwoBranch(t) => t.calibrate_forward_with(x, scratch),
        }
    }

    /// Freezes int8 state on every parameterized layer.
    pub fn freeze_quant(&mut self) {
        match self {
            Encoder::Sequential(s) => s.freeze_quant(),
            Encoder::TwoBranch(t) => t.freeze_quant(),
        }
    }

    /// Drops int8 state and calibration statistics.
    pub fn clear_quant(&mut self) {
        match self {
            Encoder::Sequential(s) => s.clear_quant(),
            Encoder::TwoBranch(t) => t.clear_quant(),
        }
    }

    /// Caching forward pass.
    pub fn forward_cached(&self, x: &[f32]) -> (Vec<f32>, EncoderCache) {
        kernels::with_thread_scratch(|s| self.forward_cached_with(x, s))
    }

    /// [`Encoder::forward_cached`] reusing buffers from `scratch`.
    pub fn forward_cached_with(
        &self,
        x: &[f32],
        scratch: &mut KernelScratch,
    ) -> (Vec<f32>, EncoderCache) {
        match self {
            Encoder::Sequential(s) => {
                let c = s.forward_cached_with(x, scratch);
                (c.output.clone(), EncoderCache::Sequential(c))
            }
            Encoder::TwoBranch(t) => {
                let c = t.forward_cached_with(x, scratch);
                (c.output.clone(), EncoderCache::TwoBranch(c))
            }
        }
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if the cache kind does not match the encoder kind.
    pub fn backward(&mut self, cache: &EncoderCache, grad_out: &[f32]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.backward_with(cache, grad_out, s))
    }

    /// [`Encoder::backward`] reusing buffers from `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if the cache kind does not match the encoder kind.
    pub fn backward_with(
        &mut self,
        cache: &EncoderCache,
        grad_out: &[f32],
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        match (self, cache) {
            (Encoder::Sequential(s), EncoderCache::Sequential(c)) => {
                s.backward_with(c, grad_out, scratch)
            }
            (Encoder::TwoBranch(t), EncoderCache::TwoBranch(c)) => {
                t.backward_with(c, grad_out, scratch)
            }
            _ => panic!("encoder/cache kind mismatch"),
        }
    }
}

impl From<Sequential> for Encoder {
    fn from(s: Sequential) -> Encoder {
        Encoder::Sequential(s)
    }
}

impl From<TwoBranchEncoder> for Encoder {
    fn from(t: TwoBranchEncoder) -> Encoder {
        Encoder::TwoBranch(t)
    }
}

impl Parameterized for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        match self {
            Encoder::Sequential(s) => s.visit_params(f),
            Encoder::TwoBranch(t) => t.visit_params(f),
        }
    }
}

/// Persistent per-stream inference state for incremental stepping.
///
/// Replaying a T-frame window on every new frame costs O(T) encoder +
/// LSTM work per step. A `StreamState` instead carries what the replay
/// would recompute: the LSTM hidden/cell state after the frames seen so
/// far, and a ring of the last `history` per-frame softmax outputs so
/// the window-mean probability (the quantity
/// [`SequenceClassifier::predict_proba`] reports) can be maintained in
/// O(history) scalar work without re-running the network.
///
/// A fresh state stepped through the same frames in order yields
/// bit-identical probabilities to the full-window
/// [`SequenceClassifier::predict_proba`] call: the LSTM step reduces
/// the same accumulator chains as the sequence forward, and the ring
/// mean accumulates per-frame softmax vectors oldest→newest before one
/// division — the exact order `predict_proba` uses. After the first
/// window the semantics *intentionally* diverge: the stream keeps its
/// LSTM context instead of replaying from a zero state (that context
/// retention is both the speedup and, per Fig. 17, the point of the
/// recurrent model).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamState {
    /// LSTM carry; `None` for the CNN-only ablation.
    lstm: Option<LstmStackState>,
    /// Last `history` per-frame softmax outputs, oldest first.
    probs: VecDeque<Vec<f32>>,
    history: usize,
}

impl StreamState {
    /// True once `history` frames have been absorbed — i.e. the ring
    /// spans a full window and the running mean is comparable to a
    /// whole-window `predict_proba`.
    pub fn ready(&self) -> bool {
        self.probs.len() == self.history
    }

    /// Number of frames currently in the probability ring
    /// (saturates at the window length).
    pub fn frames_seen(&self) -> usize {
        self.probs.len()
    }

    /// Window length this state was created for.
    pub fn history(&self) -> usize {
        self.history
    }

    /// Clears all carried state (LSTM context and probability ring),
    /// as after a stream gap: the next step starts a fresh window.
    pub fn reset(&mut self) {
        if let Some(l) = &mut self.lstm {
            l.reset();
        }
        self.probs.clear();
    }

    /// True when `other` carries the same LSTM layer geometry and
    /// window length as `self` — i.e. it could have been produced by
    /// the same model and serving configuration. The cheap structural
    /// gate a restore path runs before adopting a foreign state.
    pub fn shape_matches(&self, other: &StreamState) -> bool {
        if self.history != other.history {
            return false;
        }
        match (&self.lstm, &other.lstm) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.n_layers() == b.n_layers()
                    && (0..a.n_layers()).all(|l| {
                        a.hidden(l).len() == b.hidden(l).len() && a.cell(l).len() == b.cell(l).len()
                    })
            }
            _ => false,
        }
    }

    /// True when every buffered softmax row has exactly `n` classes.
    pub fn class_dim_is(&self, n: usize) -> bool {
        self.probs.iter().all(|p| p.len() == n)
    }

    /// Serialises the full stream state — LSTM hidden/cell per layer
    /// plus the softmax window ring — into a self-describing byte
    /// vector (all little-endian):
    ///
    /// ```text
    /// magic   b"M2SS"    4 bytes
    /// version u32        currently 1
    /// history u32        window length
    /// lstm    u8         0 = CNN-only, 1 = LSTM state follows
    /// if lstm: layers u32, then per layer: len u32, len × f32 hidden,
    ///          len × f32 cell
    /// rows    u32        buffered softmax rows, oldest first
    /// per row: len u32, then len × f32
    /// ```
    ///
    /// Values round-trip bit-exactly ([`StreamState::from_bytes`]
    /// restores f32 bit patterns verbatim), so a restored stream
    /// continues bit-identically to an uninterrupted one.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(STREAM_MAGIC);
        out.extend_from_slice(&STREAM_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.history as u32).to_le_bytes());
        match &self.lstm {
            None => out.push(0),
            Some(s) => {
                out.push(1);
                out.extend_from_slice(&(s.n_layers() as u32).to_le_bytes());
                for l in 0..s.n_layers() {
                    out.extend_from_slice(&(s.hidden(l).len() as u32).to_le_bytes());
                    for v in s.hidden(l).iter().chain(s.cell(l)) {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
        }
        out.extend_from_slice(&(self.probs.len() as u32).to_le_bytes());
        for row in &self.probs {
            out.extend_from_slice(&(row.len() as u32).to_le_bytes());
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    /// Restores a state saved by [`StreamState::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the bytes are malformed
    /// (wrong magic/version, truncation, trailing bytes, a zero
    /// window, or more buffered rows than the window holds). Model
    /// compatibility is *not* checked here — run
    /// [`StreamState::shape_matches`] against a freshly minted state
    /// before stepping the restored one.
    pub fn from_bytes(bytes: &[u8]) -> Result<StreamState, CheckpointError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CheckpointError> {
            if *pos + n > bytes.len() {
                return Err(CheckpointError::Truncated);
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let read_u32 = |pos: &mut usize| -> Result<u32, CheckpointError> {
            Ok(u32::from_le_bytes(
                take(pos, 4)?.try_into().expect("4 bytes"),
            ))
        };
        let read_f32s = |pos: &mut usize, n: usize| -> Result<Vec<f32>, CheckpointError> {
            Ok(take(pos, n * 4)?
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                .collect())
        };
        if take(&mut pos, 4)? != STREAM_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = read_u32(&mut pos)?;
        if version != STREAM_VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let history = read_u32(&mut pos)? as usize;
        if history == 0 {
            return Err(CheckpointError::ShapeMismatch {
                index: 0,
                expected: 1,
                got: 0,
            });
        }
        let lstm = match take(&mut pos, 1)?[0] {
            0 => None,
            _ => {
                let layers = read_u32(&mut pos)? as usize;
                let mut h = Vec::with_capacity(layers);
                let mut c = Vec::with_capacity(layers);
                for _ in 0..layers {
                    let len = read_u32(&mut pos)? as usize;
                    h.push(read_f32s(&mut pos, len)?);
                    c.push(read_f32s(&mut pos, len)?);
                }
                Some(LstmStackState::from_parts(h, c).expect("lengths read pairwise"))
            }
        };
        let rows = read_u32(&mut pos)? as usize;
        if rows > history {
            return Err(CheckpointError::ShapeMismatch {
                index: 0,
                expected: history,
                got: rows,
            });
        }
        let mut probs = VecDeque::with_capacity(history);
        for _ in 0..rows {
            let len = read_u32(&mut pos)? as usize;
            probs.push_back(read_f32s(&mut pos, len)?);
        }
        if pos != bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        Ok(StreamState {
            lstm,
            probs,
            history,
        })
    }

    /// Pushes one frame's softmax output and returns the running mean
    /// over the ring, accumulated oldest→newest then divided once —
    /// the same order and rounding as
    /// [`SequenceClassifier::predict_proba`].
    fn push_probs(&mut self, p: Vec<f32>) -> Vec<f32> {
        if self.probs.len() == self.history {
            self.probs.pop_front();
        }
        let n = p.len();
        self.probs.push_back(p);
        let mut acc = vec![0.0f32; n];
        for frame in &self.probs {
            for (a, &v) in acc.iter_mut().zip(frame) {
                *a += v;
            }
        }
        let t = self.probs.len() as f32;
        acc.iter_mut().for_each(|a| *a /= t);
        acc
    }
}

/// CNN(+LSTM) sequence classifier with a per-frame softmax head.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceClassifier {
    /// Shared per-frame encoder.
    pub encoder: Encoder,
    /// Temporal backbone; `None` is the CNN-only ablation.
    pub lstm: Option<LstmStack>,
    /// Classification head applied to every frame's representation.
    pub head: Dense,
    n_classes: usize,
}

impl SequenceClassifier {
    /// Creates the full CNN+LSTM model. The head input dimension is the
    /// LSTM stack's output dimension.
    pub fn new(encoder: impl Into<Encoder>, lstm: LstmStack, n_classes: usize, seed: u64) -> Self {
        let head = Dense::new(lstm.out_dim(), n_classes, seed ^ 0x0DD5);
        SequenceClassifier {
            encoder: encoder.into(),
            lstm: Some(lstm),
            head,
            n_classes,
        }
    }

    /// Creates the CNN-only ablation: the head consumes the encoder's
    /// `feature_dim`-dimensional output directly.
    pub fn without_lstm(
        encoder: impl Into<Encoder>,
        feature_dim: usize,
        n_classes: usize,
        seed: u64,
    ) -> Self {
        SequenceClassifier {
            encoder: encoder.into(),
            lstm: None,
            head: Dense::new(feature_dim, n_classes, seed ^ 0x0DD5),
            n_classes,
        }
    }

    /// Number of output classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Per-frame logits for a sequence of frames (inference only).
    pub fn forward_logits(&self, frames: &[Vec<f32>]) -> Vec<Vec<f32>> {
        kernels::with_thread_scratch(|s| self.forward_logits_with(frames, s))
    }

    /// [`SequenceClassifier::forward_logits`] reusing buffers from
    /// `scratch`; the per-frame head runs as one batched GEMM over
    /// the whole sequence.
    pub fn forward_logits_with(
        &self,
        frames: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> Vec<Vec<f32>> {
        let feats: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| self.encoder.forward_with(f, scratch))
            .collect();
        let reps: Vec<Vec<f32>> = match &self.lstm {
            Some(stack) => stack.forward_sequence_with(&feats, scratch).outputs,
            None => feats,
        };
        let t_len = reps.len();
        if t_len == 0 {
            return Vec::new();
        }
        let rep_dim = self.head.in_dim();
        let mut reps_flat = scratch.take(t_len * rep_dim);
        for (t, rep) in reps.iter().enumerate() {
            reps_flat[t * rep_dim..(t + 1) * rep_dim].copy_from_slice(rep);
        }
        let logits_flat = self.head.forward_batch_with(&reps_flat, t_len, scratch);
        scratch.recycle(reps_flat);
        let out = logits_flat
            .chunks_exact(self.n_classes)
            .map(|c| c.to_vec())
            .collect();
        scratch.recycle(logits_flat);
        out
    }

    /// Creates a fresh [`StreamState`] for one stream with a
    /// `history`-frame probability window (matching the
    /// `history_len` a replay-based caller would use).
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    pub fn stream_state(&self, history: usize) -> StreamState {
        assert!(history > 0, "history must be positive");
        StreamState {
            lstm: self.lstm.as_ref().map(|s| s.zero_state()),
            probs: VecDeque::with_capacity(history),
            history,
        }
    }

    /// Advances `batch` independent streams by one frame each and
    /// returns each stream's running window-mean class probabilities.
    ///
    /// This is the micro-batched hot path: per-session encoder outputs
    /// are stacked row-wise so the LSTM step and the softmax head run
    /// as `[batch × ·]` GEMMs. Row independence of the kernels makes
    /// the result bit-identical to `batch` serial
    /// [`SequenceClassifier::step_with`] calls, in any slot order.
    ///
    /// # Panics
    ///
    /// Panics if `frames.len() != states.len()`, or on frame/state
    /// shape mismatches.
    pub fn step_batch_with(
        &self,
        frames: &[&[f32]],
        states: &mut [&mut StreamState],
        scratch: &mut KernelScratch,
    ) -> Vec<Vec<f32>> {
        assert_eq!(frames.len(), states.len(), "frame/state count mismatch");
        let batch = frames.len();
        if batch == 0 {
            return Vec::new();
        }
        let _span = forward_latency("step").time();
        // Per-frame encoder (shared weights), gathered row-wise.
        let feats: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| self.encoder.forward_with(f, scratch))
            .collect();
        let rep_dim = self.head.in_dim();
        let reps_flat = match &self.lstm {
            Some(stack) => {
                let feat_dim = stack.in_dim();
                let mut xflat = scratch.take(batch * feat_dim);
                for (r, feat) in feats.iter().enumerate() {
                    xflat[r * feat_dim..(r + 1) * feat_dim].copy_from_slice(feat);
                }
                let mut lstm_states: Vec<&mut LstmStackState> = states
                    .iter_mut()
                    .map(|s| s.lstm.as_mut().expect("state built for an LSTM-less model"))
                    .collect();
                let out = stack.step_batch_with(batch, &xflat, &mut lstm_states, scratch);
                scratch.recycle(xflat);
                out
            }
            None => {
                let mut flat = scratch.take(batch * rep_dim);
                for (r, feat) in feats.iter().enumerate() {
                    flat[r * rep_dim..(r + 1) * rep_dim].copy_from_slice(feat);
                }
                flat
            }
        };
        let logits_flat = self.head.forward_batch_with(&reps_flat, batch, scratch);
        let means = logits_flat
            .chunks_exact(self.n_classes)
            .zip(states.iter_mut())
            .map(|(logits, state)| state.push_probs(softmax(logits)))
            .collect();
        scratch.recycle(logits_flat);
        scratch.recycle(reps_flat);
        means
    }

    /// Advances one stream by one frame; returns the running
    /// window-mean class probabilities. Single-row shapes dispatch to
    /// the GEMV microkernels, so solo-stream latency does not pay for
    /// the batched API.
    pub fn step_with(
        &self,
        frame: &[f32],
        state: &mut StreamState,
        scratch: &mut KernelScratch,
    ) -> Vec<f32> {
        self.step_batch_with(&[frame], &mut [state], scratch)
            .pop()
            .expect("one stream in, one prediction out")
    }

    /// [`SequenceClassifier::step_with`] using the thread-local
    /// scratch arena.
    pub fn step(&self, frame: &[f32], state: &mut StreamState) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.step_with(frame, state, s))
    }

    /// Fallible [`SequenceClassifier::step_with`]: non-finite
    /// probabilities (NaN inputs, diverged parameters) become an
    /// [`Error`] instead of silent garbage. On error the probability
    /// ring still absorbed the frame; callers treating the stream as
    /// poisoned should [`StreamState::reset`] it.
    pub fn try_step_with(
        &self,
        frame: &[f32],
        state: &mut StreamState,
        scratch: &mut KernelScratch,
    ) -> Result<Vec<f32>, Error> {
        let p = self.step_with(frame, state, scratch);
        if p.iter().all(|v| v.is_finite()) {
            Ok(p)
        } else {
            Err(Error::NonFiniteOutput)
        }
    }

    /// Mean per-frame class probabilities.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame sequence.
    pub fn predict_proba(&self, frames: &[Vec<f32>]) -> Vec<f32> {
        kernels::with_thread_scratch(|s| self.predict_proba_with(frames, s))
    }

    /// [`SequenceClassifier::predict_proba`] reusing buffers from
    /// `scratch`.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame sequence.
    pub fn predict_proba_with(&self, frames: &[Vec<f32>], scratch: &mut KernelScratch) -> Vec<f32> {
        assert!(!frames.is_empty(), "need at least one frame");
        let _span = forward_latency("replay").time();
        let logits = self.forward_logits_with(frames, scratch);
        let mut acc = vec![0.0f32; self.n_classes];
        for l in &logits {
            for (a, p) in acc.iter_mut().zip(softmax(l)) {
                *a += p;
            }
        }
        let t = logits.len() as f32;
        acc.iter_mut().for_each(|a| *a /= t);
        acc
    }

    /// Mean per-frame class probabilities, as a `Result`.
    ///
    /// Fallible counterpart of [`SequenceClassifier::predict_proba`]
    /// for streaming/degraded inputs: empty sequences and non-finite
    /// probabilities (NaN inputs, diverged parameters) become [`Error`]s
    /// instead of panics or silent garbage.
    pub fn try_predict_proba(&self, frames: &[Vec<f32>]) -> Result<Vec<f32>, Error> {
        kernels::with_thread_scratch(|s| self.try_predict_proba_with(frames, s))
    }

    /// [`SequenceClassifier::try_predict_proba`] reusing buffers from
    /// `scratch` — the signature streaming callers drive so the
    /// steady-state window path stops allocating per prediction.
    pub fn try_predict_proba_with(
        &self,
        frames: &[Vec<f32>],
        scratch: &mut KernelScratch,
    ) -> Result<Vec<f32>, Error> {
        if frames.is_empty() {
            return Err(Error::EmptySequence);
        }
        let p = self.predict_proba_with(frames, scratch);
        if p.iter().all(|v| v.is_finite()) {
            Ok(p)
        } else {
            Err(Error::NonFiniteOutput)
        }
    }

    /// Most likely class, as a `Result` (see
    /// [`SequenceClassifier::try_predict_proba`]).
    pub fn try_predict(&self, frames: &[Vec<f32>]) -> Result<usize, Error> {
        let p = self.try_predict_proba(frames)?;
        // Probabilities are finite here, so a plain fold is total.
        Ok(p.iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |best, (i, &v)| {
                if v > best.1 {
                    (i, v)
                } else {
                    best
                }
            })
            .0)
    }

    /// Most likely class.
    ///
    /// # Panics
    ///
    /// Panics on an empty frame sequence or non-finite probabilities;
    /// use [`SequenceClassifier::try_predict`] to handle those as
    /// errors.
    pub fn predict(&self, frames: &[Vec<f32>]) -> usize {
        match self.try_predict(frames) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs one calibration sequence through the model, feeding every
    /// quantization site's activation-range statistics.
    fn calibrate_with(&mut self, frames: &[Vec<f32>], scratch: &mut KernelScratch) {
        let feats: Vec<Vec<f32>> = frames
            .iter()
            .map(|f| self.encoder.calibrate_forward_with(f, scratch))
            .collect();
        let reps = match &mut self.lstm {
            Some(stack) => stack.calibrate_sequence_with(&feats, scratch),
            None => feats,
        };
        for rep in &reps {
            self.head.observe(rep);
        }
    }

    /// Prepares the model for [`m2ai_kernels::Backend::QuantI8`]
    /// inference: clears any stale int8 state, runs the calibration
    /// sequences through the f32 network to freeze per-tensor
    /// activation scales, then quantizes every weight matrix
    /// per-output-channel.
    ///
    /// Robust under any active backend — calibration forwards run in
    /// f32 because the int8 state is absent until the final freeze.
    /// Quantized state is a pure inference sidecar: training updates
    /// (and checkpoint loads) do not refresh it, so re-run this after
    /// either. An empty calibration set degrades to unit activation
    /// scales (weights still quantize from their own range).
    pub fn prepare_quantized<'a, I>(&mut self, calib: I)
    where
        I: IntoIterator<Item = &'a [Vec<f32>]>,
    {
        self.clear_quant();
        kernels::with_thread_scratch(|scratch| {
            for frames in calib {
                self.calibrate_with(frames, scratch);
            }
        });
        self.encoder.freeze_quant();
        if let Some(stack) = &mut self.lstm {
            stack.freeze_quant();
        }
        self.head.freeze_quant();
    }

    /// Drops all int8 state; the model serves pure f32 again under
    /// every backend.
    pub fn clear_quant(&mut self) {
        self.encoder.clear_quant();
        if let Some(stack) = &mut self.lstm {
            stack.clear_quant();
        }
        self.head.clear_quant();
    }

    /// True once [`SequenceClassifier::prepare_quantized`] has frozen
    /// int8 state (the head is always quantized when preparation ran).
    pub fn is_quantized(&self) -> bool {
        self.head.is_quantized()
    }

    /// Forward + backward for one labelled sequence; accumulates
    /// parameter gradients and returns the mean per-frame loss.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or `label >= n_classes`.
    pub fn loss_and_backprop(&mut self, frames: &[Vec<f32>], label: usize) -> f32 {
        kernels::with_thread_scratch(|s| self.loss_and_backprop_with(frames, label, s))
    }

    /// [`SequenceClassifier::loss_and_backprop`] reusing buffers from
    /// `scratch` — the signature `fit()` drives so the whole training
    /// loop shares one arena per worker thread. The per-frame head
    /// runs forward *and* backward as batched GEMMs over the sequence.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or `label >= n_classes`.
    pub fn loss_and_backprop_with(
        &mut self,
        frames: &[Vec<f32>],
        label: usize,
        scratch: &mut KernelScratch,
    ) -> f32 {
        assert!(!frames.is_empty(), "need at least one frame");
        assert!(label < self.n_classes, "label out of range");

        // Forward with caches.
        let mut enc_caches = Vec::with_capacity(frames.len());
        let mut feats = Vec::with_capacity(frames.len());
        for f in frames {
            let (out, cache) = self.encoder.forward_cached_with(f, scratch);
            feats.push(out);
            enc_caches.push(cache);
        }
        let lstm_cache = self
            .lstm
            .as_ref()
            .map(|s| s.forward_sequence_with(&feats, scratch));
        let reps: &[Vec<f32>] = match &lstm_cache {
            Some(c) => &c.outputs,
            None => &feats,
        };

        // Batched per-frame head + loss: one GEMM forward, one set of
        // GEMMs backward, same per-step accumulation order as the old
        // per-frame loop.
        let t_len = frames.len();
        let rep_dim = self.head.in_dim();
        let scale = 1.0 / t_len as f32;
        let mut reps_flat = scratch.take(t_len * rep_dim);
        for (t, rep) in reps.iter().enumerate() {
            reps_flat[t * rep_dim..(t + 1) * rep_dim].copy_from_slice(rep);
        }
        let logits_flat = self.head.forward_batch_with(&reps_flat, t_len, scratch);
        let mut total_loss = 0.0;
        let mut grads_flat = scratch.take(t_len * self.n_classes);
        for t in 0..t_len {
            let logits = &logits_flat[t * self.n_classes..(t + 1) * self.n_classes];
            let (loss, grad_logits) = softmax_cross_entropy(logits, label);
            total_loss += loss * scale;
            for (slot, g) in grads_flat[t * self.n_classes..(t + 1) * self.n_classes]
                .iter_mut()
                .zip(&grad_logits)
            {
                *slot = g * scale;
            }
        }
        let rep_grads_flat = self.head.backward_batch(&reps_flat, &grads_flat, t_len);
        scratch.recycle(grads_flat);
        scratch.recycle(logits_flat);
        scratch.recycle(reps_flat);
        let rep_grads: Vec<Vec<f32>> = rep_grads_flat
            .chunks_exact(rep_dim)
            .map(|c| c.to_vec())
            .collect();

        // Back through LSTM (if any) and the encoder.
        let feat_grads: Vec<Vec<f32>> = match (&mut self.lstm, &lstm_cache) {
            (Some(stack), Some(cache)) => stack.backward_sequence_with(cache, &rep_grads, scratch),
            _ => rep_grads,
        };
        for (cache, g) in enc_caches.iter().zip(&feat_grads) {
            self.encoder.backward_with(cache, g, scratch);
        }
        total_loss
    }
}

impl Parameterized for SequenceClassifier {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.encoder.visit_params(f);
        if let Some(l) = &mut self.lstm {
            l.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Layer;
    use crate::optim::Sgd;

    fn tiny_model(seed: u64) -> SequenceClassifier {
        let encoder = Sequential::new(vec![Layer::dense(4, 6, seed), Layer::relu()]);
        let lstm = LstmStack::new(6, &[5], seed);
        SequenceClassifier::new(encoder, lstm, 3, seed)
    }

    #[test]
    fn probabilities_are_normalised() {
        let m = tiny_model(1);
        let frames = vec![vec![0.2, -0.1, 0.5, 0.0]; 6];
        let p = m.predict_proba(&frames);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn predict_in_range() {
        let m = tiny_model(2);
        let frames = vec![vec![0.1; 4]; 3];
        assert!(m.predict(&frames) < 3);
    }

    #[test]
    fn full_model_gradient_matches_numeric() {
        let m = tiny_model(3);
        let frames: Vec<Vec<f32>> = (0..3)
            .map(|t| (0..4).map(|j| ((t * 4 + j) as f32 * 0.21).sin()).collect())
            .collect();
        let label = 1;
        // Analytic gradient of all params.
        let mut model = m.clone();
        model.zero_grad();
        model.loss_and_backprop(&frames, label);
        let mut analytic = Vec::new();
        model.visit_params(&mut |_, g| analytic.extend_from_slice(g));

        // Numeric: perturb each parameter (sampled) of a fresh clone.
        let loss_of = |mm: &SequenceClassifier| {
            let logits = mm.forward_logits(&frames);
            logits
                .iter()
                .map(|l| crate::loss::softmax_cross_entropy(l, label).0)
                .sum::<f32>()
                / logits.len() as f32
        };
        let eps = 1e-2;
        let mut flat_index = 0usize;
        let mut probe = m.clone();
        let total = {
            let mut c = probe.clone();
            c.param_count()
        };
        let stride = (total / 60).max(1); // sample ~60 params
        let mut checked = 0;
        // Walk blocks, perturbing in place via visit_params.
        let mut block_start = 0usize;
        let mut blocks: Vec<usize> = Vec::new();
        probe.visit_params(&mut |p, _| blocks.push(p.len()));
        for (b, len) in blocks.iter().enumerate() {
            for i in (0..*len).step_by(stride) {
                let gi = analytic[block_start + i];
                let mut plus = m.clone();
                let mut minus = m.clone();
                let mut idx = 0;
                plus.visit_params(&mut |p, _| {
                    if idx == b {
                        p[i] += eps;
                    }
                    idx += 1;
                });
                idx = 0;
                minus.visit_params(&mut |p, _| {
                    if idx == b {
                        p[i] -= eps;
                    }
                    idx += 1;
                });
                let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
                assert!(
                    (num - gi).abs() < 5e-2 * (1.0 + num.abs()),
                    "block {b} idx {i}: numeric {num}, analytic {gi}"
                );
                checked += 1;
            }
            block_start += len;
            flat_index += len;
        }
        let _ = flat_index;
        assert!(checked > 20, "too few parameters checked");
    }

    #[test]
    fn learns_order_sensitive_toy_problem() {
        // Class 0: pulse early; class 1: pulse late. A memory-less
        // model cannot separate these from per-frame stats alone once
        // probabilities are averaged — the LSTM model must.
        let make = |early: bool| -> Vec<Vec<f32>> {
            (0..6)
                .map(|t| {
                    let on = if early { t < 3 } else { t >= 3 };
                    vec![if on { 1.0 } else { 0.0 }, 0.2, -0.1, 0.05]
                })
                .collect()
        };
        let encoder = Sequential::new(vec![Layer::dense(4, 6, 5), Layer::relu()]);
        let lstm = LstmStack::new(6, &[8], 5);
        let mut model = SequenceClassifier::new(encoder, lstm, 2, 5);
        let mut opt = Sgd::new(0.2, 0.9, Some(5.0));
        for _ in 0..150 {
            model.zero_grad();
            let mut loss = model.loss_and_backprop(&make(true), 0);
            loss += model.loss_and_backprop(&make(false), 1);
            let _ = loss;
            opt.step(&mut model, 0.5);
        }
        assert_eq!(model.predict(&make(true)), 0);
        assert_eq!(model.predict(&make(false)), 1);
    }

    #[test]
    fn cnn_only_variant_runs() {
        let encoder = Sequential::new(vec![Layer::dense(4, 6, 7), Layer::relu()]);
        let mut m = SequenceClassifier::without_lstm(encoder, 6, 3, 7);
        assert!(m.lstm.is_none());
        let frames = vec![vec![0.3; 4]; 4];
        let loss = m.loss_and_backprop(&frames, 2);
        assert!(loss.is_finite() && loss > 0.0);
        assert!(m.predict(&frames) < 3);
    }

    #[test]
    fn lstm_only_variant_runs() {
        // Identity encoder: raw frames straight into the LSTM.
        let m = SequenceClassifier::new(Sequential::default(), LstmStack::new(4, &[5], 9), 3, 9);
        let frames = vec![vec![0.1, 0.2, 0.3, 0.4]; 3];
        assert!(m.predict(&frames) < 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_sequence_panics() {
        tiny_model(0).predict(&[]);
    }

    #[test]
    fn try_predict_reports_empty_and_nan() {
        let m = tiny_model(4);
        assert_eq!(m.try_predict(&[]), Err(crate::error::Error::EmptySequence));
        let ok_frames = vec![vec![0.1; 4]; 3];
        assert_eq!(m.try_predict(&ok_frames), Ok(m.predict(&ok_frames)));
        // A diverged model (NaN parameters) must report, not emit
        // garbage. (NaN *inputs* are often absorbed by ReLU's
        // NaN-ignoring max — parameters are the reliable poison.)
        let mut diverged = tiny_model(4);
        diverged.visit_params(&mut |p, _| p.iter_mut().for_each(|v| *v = f32::NAN));
        assert_eq!(
            diverged.try_predict(&ok_frames),
            Err(crate::error::Error::NonFiniteOutput)
        );
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_label_panics() {
        tiny_model(0).loss_and_backprop(&[vec![0.0; 4]], 9);
    }

    fn toy_frames(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|t| (0..4).map(|j| ((t * 4 + j) as f32 * 0.37).sin()).collect())
            .collect()
    }

    /// The three Fig. 17 variants at toy size.
    fn variants(seed: u64) -> Vec<(&'static str, SequenceClassifier)> {
        let encoder = Sequential::new(vec![Layer::dense(4, 6, seed), Layer::relu()]);
        let cnn_lstm =
            SequenceClassifier::new(encoder.clone(), LstmStack::new(6, &[5, 4], seed), 3, seed);
        let cnn_only = SequenceClassifier::without_lstm(encoder, 6, 3, seed);
        let lstm_only = SequenceClassifier::new(
            Sequential::default(),
            LstmStack::new(4, &[5], seed),
            3,
            seed,
        );
        vec![
            ("cnn_lstm", cnn_lstm),
            ("cnn_only", cnn_only),
            ("lstm_only", lstm_only),
        ]
    }

    #[test]
    fn fresh_stream_matches_predict_proba_bitwise() {
        // Stepping a fresh state through a window must reproduce the
        // full-window replay exactly, for every architecture variant.
        let frames = toy_frames(6);
        for (name, m) in variants(11) {
            let mut state = m.stream_state(frames.len());
            let mut last = Vec::new();
            for f in &frames {
                last = m.step(f, &mut state);
            }
            assert!(state.ready(), "{name}: state not ready after window");
            assert_eq!(last, m.predict_proba(&frames), "{name}: stream != replay");
        }
    }

    #[test]
    fn stream_window_mean_tracks_sliding_replay_prefix() {
        // Before the ring is full, the running mean equals the
        // replay over the prefix seen so far (same accumulation
        // order); for the memory-less CNN-only variant it stays equal
        // to the sliding-window replay forever.
        let frames = toy_frames(9);
        let (_, m) = variants(12).remove(1); // cnn_only
        let mut state = m.stream_state(4);
        for (t, f) in frames.iter().enumerate() {
            let p = m.step(f, &mut state);
            let lo = (t + 1).saturating_sub(4);
            assert_eq!(p, m.predict_proba(&frames[lo..=t]), "frame {t}");
        }
    }

    #[test]
    fn batched_step_matches_serial_steps_bitwise() {
        // One B-row batched tick == B serial single-stream ticks,
        // regardless of slot order, for every variant.
        for (name, m) in variants(13) {
            let sessions: Vec<Vec<Vec<f32>>> = (0..5)
                .map(|s| {
                    (0..3)
                        .map(|t| {
                            (0..4)
                                .map(|j| ((s * 31 + t * 4 + j) as f32 * 0.29).cos())
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let mut serial: Vec<StreamState> = (0..5).map(|_| m.stream_state(3)).collect();
            let mut batched = serial.clone();
            for t in 0..3 {
                let serial_out: Vec<Vec<f32>> = sessions
                    .iter()
                    .zip(serial.iter_mut())
                    .map(|(frames, st)| m.step(&frames[t], st))
                    .collect();
                let frames: Vec<&[f32]> = sessions.iter().map(|f| f[t].as_slice()).collect();
                let mut refs: Vec<&mut StreamState> = batched.iter_mut().collect();
                let batch_out =
                    kernels::with_thread_scratch(|s| m.step_batch_with(&frames, &mut refs, s));
                assert_eq!(batch_out, serial_out, "{name}: t={t}");
            }
            assert_eq!(batched, serial, "{name}: states diverged");
        }
    }

    #[test]
    fn stream_reset_restarts_the_window() {
        let frames = toy_frames(6);
        let (_, m) = variants(14).remove(0);
        let mut state = m.stream_state(6);
        for f in &frames {
            m.step(f, &mut state);
        }
        state.reset();
        assert_eq!(state.frames_seen(), 0);
        let mut replayed = Vec::new();
        for f in &frames {
            replayed = m.step(f, &mut state);
        }
        assert_eq!(replayed, m.predict_proba(&frames), "reset state not fresh");
    }

    #[test]
    fn try_step_reports_nan() {
        let mut diverged = tiny_model(15);
        diverged.visit_params(&mut |p, _| p.iter_mut().for_each(|v| *v = f32::NAN));
        let mut state = diverged.stream_state(3);
        let got = kernels::with_thread_scratch(|s| {
            diverged.try_step_with(&[0.1, 0.2, 0.3, 0.4], &mut state, s)
        });
        assert_eq!(got, Err(crate::error::Error::NonFiniteOutput));
    }

    #[test]
    #[should_panic(expected = "history")]
    fn zero_history_stream_panics() {
        tiny_model(0).stream_state(0);
    }

    #[test]
    fn stream_state_bytes_roundtrip_bitwise() {
        // Mid-stream snapshot → bytes → restore must continue
        // bit-identically to the uninterrupted stream, for every
        // architecture variant (including the LSTM-less one).
        let frames = toy_frames(7);
        for (name, m) in variants(21) {
            let mut live = m.stream_state(3);
            for f in &frames[..4] {
                m.step(f, &mut live);
            }
            let bytes = live.to_bytes();
            let mut restored = StreamState::from_bytes(&bytes).expect("roundtrip");
            assert_eq!(restored, live, "{name}: restored state differs");
            assert!(restored.shape_matches(&m.stream_state(3)), "{name}");
            assert!(restored.class_dim_is(m.n_classes()), "{name}");
            for f in &frames[4..] {
                let a = m.step(f, &mut live);
                let b = m.step(f, &mut restored);
                assert_eq!(a, b, "{name}: restored stream diverged");
            }
        }
    }

    #[test]
    fn stream_state_bytes_reject_malformed() {
        let m = tiny_model(22);
        let mut state = m.stream_state(2);
        m.step(&[0.1, 0.2, 0.3, 0.4], &mut state);
        let bytes = state.to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            StreamState::from_bytes(&bad),
            Err(CheckpointError::BadMagic)
        );
        let mut vers = bytes.clone();
        vers[4] = 9;
        assert!(matches!(
            StreamState::from_bytes(&vers),
            Err(CheckpointError::BadVersion(9))
        ));
        assert_eq!(
            StreamState::from_bytes(&bytes[..bytes.len() - 2]),
            Err(CheckpointError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            StreamState::from_bytes(&trailing),
            Err(CheckpointError::Truncated)
        );
    }

    /// Restores [`kernels::Backend::Fast`] on drop so a panicking
    /// assertion can't leave the process-wide backend flipped.
    /// Flipping between `Fast` and `QuantI8` is safe around concurrent
    /// tests: every f32 dispatch under `QuantI8` is arithmetic-
    /// identical to `Fast`, and only quant-*prepared* models (local to
    /// these tests) take the int8 paths.
    struct RestoreFast;
    impl Drop for RestoreFast {
        fn drop(&mut self) {
            kernels::set_backend(kernels::Backend::Fast);
        }
    }

    #[test]
    fn quantized_inference_tracks_f32() {
        let m = tiny_model(31);
        let frames = toy_frames(6);
        let f32_probs = m.predict_proba(&frames);

        let mut qm = m.clone();
        assert!(!qm.is_quantized());
        qm.prepare_quantized(std::iter::once(frames.as_slice()));
        assert!(qm.is_quantized());

        let _guard = RestoreFast;
        kernels::set_backend(kernels::Backend::QuantI8);
        // Unprepared model under QuantI8 is bit-identical to Fast.
        assert_eq!(m.predict_proba(&frames), f32_probs);
        // Prepared model runs int8 and must stay close in probability.
        let q_probs = qm.predict_proba(&frames);
        for (f, q) in f32_probs.iter().zip(&q_probs) {
            assert!((f - q).abs() < 0.05, "f32 {f} vs int8 {q}");
        }
        // Dropping quant state restores bit-exact f32 behaviour.
        qm.clear_quant();
        assert!(!qm.is_quantized());
        assert_eq!(qm.predict_proba(&frames), f32_probs);
    }

    #[test]
    fn quantized_stream_matches_quantized_replay_bitwise() {
        // The stream/replay bitwise contract must survive
        // quantization: the int8 step and sequence paths share one
        // dequant formula.
        let frames = toy_frames(5);
        for (name, m) in variants(32) {
            let mut qm = m;
            qm.prepare_quantized(std::iter::once(frames.as_slice()));
            let _guard = RestoreFast;
            kernels::set_backend(kernels::Backend::QuantI8);
            let mut state = qm.stream_state(frames.len());
            let mut last = Vec::new();
            for f in &frames {
                last = qm.step(f, &mut state);
            }
            assert_eq!(
                last,
                qm.predict_proba(&frames),
                "{name}: quantized stream != quantized replay"
            );
            kernels::set_backend(kernels::Backend::Fast);
        }
    }

    #[test]
    fn stream_state_shape_gate_rejects_other_models() {
        // A state minted by a structurally different model must fail
        // the shape gate (that is the restore path's only guard).
        let a = tiny_model(23).stream_state(3);
        let wider = SequenceClassifier::new(
            Sequential::new(vec![Layer::dense(4, 6, 1), Layer::relu()]),
            LstmStack::new(6, &[9], 1),
            3,
            1,
        );
        assert!(!a.shape_matches(&wider.stream_state(3)));
        assert!(!a.shape_matches(&tiny_model(23).stream_state(4)));
        let cnn_only =
            SequenceClassifier::without_lstm(Sequential::new(vec![Layer::dense(4, 6, 1)]), 6, 3, 1);
        assert!(!a.shape_matches(&cnn_only.stream_state(3)));
    }
}
