/root/repo/target/debug/examples/quickstart-fcb052302b9ffdc4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fcb052302b9ffdc4: examples/quickstart.rs

examples/quickstart.rs:
