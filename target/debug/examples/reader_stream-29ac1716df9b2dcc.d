/root/repo/target/debug/examples/reader_stream-29ac1716df9b2dcc.d: examples/reader_stream.rs

/root/repo/target/debug/examples/reader_stream-29ac1716df9b2dcc: examples/reader_stream.rs

examples/reader_stream.rs:
