/root/repo/target/debug/examples/warehouse_coverage-1ffeac00b0535475.d: examples/warehouse_coverage.rs

/root/repo/target/debug/examples/warehouse_coverage-1ffeac00b0535475: examples/warehouse_coverage.rs

examples/warehouse_coverage.rs:
