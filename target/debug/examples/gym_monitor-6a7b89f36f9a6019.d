/root/repo/target/debug/examples/gym_monitor-6a7b89f36f9a6019.d: examples/gym_monitor.rs

/root/repo/target/debug/examples/gym_monitor-6a7b89f36f9a6019: examples/gym_monitor.rs

examples/gym_monitor.rs:
