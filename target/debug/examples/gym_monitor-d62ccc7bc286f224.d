/root/repo/target/debug/examples/gym_monitor-d62ccc7bc286f224.d: examples/gym_monitor.rs

/root/repo/target/debug/examples/gym_monitor-d62ccc7bc286f224: examples/gym_monitor.rs

examples/gym_monitor.rs:
