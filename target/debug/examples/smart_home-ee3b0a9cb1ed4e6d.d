/root/repo/target/debug/examples/smart_home-ee3b0a9cb1ed4e6d.d: examples/smart_home.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_home-ee3b0a9cb1ed4e6d.rmeta: examples/smart_home.rs Cargo.toml

examples/smart_home.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
