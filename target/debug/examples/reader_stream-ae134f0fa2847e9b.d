/root/repo/target/debug/examples/reader_stream-ae134f0fa2847e9b.d: examples/reader_stream.rs Cargo.toml

/root/repo/target/debug/examples/libreader_stream-ae134f0fa2847e9b.rmeta: examples/reader_stream.rs Cargo.toml

examples/reader_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
