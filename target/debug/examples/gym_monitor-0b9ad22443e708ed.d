/root/repo/target/debug/examples/gym_monitor-0b9ad22443e708ed.d: examples/gym_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libgym_monitor-0b9ad22443e708ed.rmeta: examples/gym_monitor.rs Cargo.toml

examples/gym_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
