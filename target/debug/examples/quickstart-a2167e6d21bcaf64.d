/root/repo/target/debug/examples/quickstart-a2167e6d21bcaf64.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a2167e6d21bcaf64: examples/quickstart.rs

examples/quickstart.rs:
