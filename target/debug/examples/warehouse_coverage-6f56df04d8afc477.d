/root/repo/target/debug/examples/warehouse_coverage-6f56df04d8afc477.d: examples/warehouse_coverage.rs

/root/repo/target/debug/examples/warehouse_coverage-6f56df04d8afc477: examples/warehouse_coverage.rs

examples/warehouse_coverage.rs:
