/root/repo/target/debug/examples/smart_home-7f44799a51311dec.d: examples/smart_home.rs

/root/repo/target/debug/examples/smart_home-7f44799a51311dec: examples/smart_home.rs

examples/smart_home.rs:
