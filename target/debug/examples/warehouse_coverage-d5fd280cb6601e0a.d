/root/repo/target/debug/examples/warehouse_coverage-d5fd280cb6601e0a.d: examples/warehouse_coverage.rs Cargo.toml

/root/repo/target/debug/examples/libwarehouse_coverage-d5fd280cb6601e0a.rmeta: examples/warehouse_coverage.rs Cargo.toml

examples/warehouse_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
