/root/repo/target/debug/examples/reader_stream-270078e6c28c0e69.d: examples/reader_stream.rs

/root/repo/target/debug/examples/reader_stream-270078e6c28c0e69: examples/reader_stream.rs

examples/reader_stream.rs:
