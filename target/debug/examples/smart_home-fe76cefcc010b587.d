/root/repo/target/debug/examples/smart_home-fe76cefcc010b587.d: examples/smart_home.rs

/root/repo/target/debug/examples/smart_home-fe76cefcc010b587: examples/smart_home.rs

examples/smart_home.rs:
