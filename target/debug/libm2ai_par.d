/root/repo/target/debug/libm2ai_par.rlib: /root/repo/crates/par/src/lib.rs
