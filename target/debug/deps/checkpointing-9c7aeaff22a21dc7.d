/root/repo/target/debug/deps/checkpointing-9c7aeaff22a21dc7.d: tests/checkpointing.rs

/root/repo/target/debug/deps/checkpointing-9c7aeaff22a21dc7: tests/checkpointing.rs

tests/checkpointing.rs:
