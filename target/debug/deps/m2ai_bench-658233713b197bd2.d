/root/repo/target/debug/deps/m2ai_bench-658233713b197bd2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/m2ai_bench-658233713b197bd2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
