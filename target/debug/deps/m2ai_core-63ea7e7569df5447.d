/root/repo/target/debug/deps/m2ai_core-63ea7e7569df5447.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_core-63ea7e7569df5447.rmeta: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/dataset.rs:
crates/core/src/frames.rs:
crates/core/src/network.rs:
crates/core/src/online.rs:
crates/core/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
