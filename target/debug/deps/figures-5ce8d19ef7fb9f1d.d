/root/repo/target/debug/deps/figures-5ce8d19ef7fb9f1d.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-5ce8d19ef7fb9f1d.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
