/root/repo/target/debug/deps/micro-3c1cb9153757b8d0.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-3c1cb9153757b8d0: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
