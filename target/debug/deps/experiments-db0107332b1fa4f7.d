/root/repo/target/debug/deps/experiments-db0107332b1fa4f7.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-db0107332b1fa4f7: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
