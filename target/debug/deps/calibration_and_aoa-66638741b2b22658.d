/root/repo/target/debug/deps/calibration_and_aoa-66638741b2b22658.d: tests/calibration_and_aoa.rs

/root/repo/target/debug/deps/calibration_and_aoa-66638741b2b22658: tests/calibration_and_aoa.rs

tests/calibration_and_aoa.rs:
