/root/repo/target/debug/deps/m2ai_nn-d6d6312d611db4a1.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libm2ai_nn-d6d6312d611db4a1.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libm2ai_nn-d6d6312d611db4a1.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/train.rs:
