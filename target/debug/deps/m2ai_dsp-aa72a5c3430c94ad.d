/root/repo/target/debug/deps/m2ai_dsp-aa72a5c3430c94ad.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/debug/deps/m2ai_dsp-aa72a5c3430c94ad: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/eigen.rs:
crates/dsp/src/esprit.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/matrix.rs:
crates/dsp/src/music.rs:
crates/dsp/src/periodogram.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
