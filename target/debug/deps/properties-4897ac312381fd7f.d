/root/repo/target/debug/deps/properties-4897ac312381fd7f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-4897ac312381fd7f: tests/properties.rs

tests/properties.rs:
