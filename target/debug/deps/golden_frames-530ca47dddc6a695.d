/root/repo/target/debug/deps/golden_frames-530ca47dddc6a695.d: tests/golden_frames.rs Cargo.toml

/root/repo/target/debug/deps/libgolden_frames-530ca47dddc6a695.rmeta: tests/golden_frames.rs Cargo.toml

tests/golden_frames.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
