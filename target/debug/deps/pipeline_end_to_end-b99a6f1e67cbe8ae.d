/root/repo/target/debug/deps/pipeline_end_to_end-b99a6f1e67cbe8ae.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-b99a6f1e67cbe8ae: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
