/root/repo/target/debug/deps/m2ai_core-2c7b51fcb03399af.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

/root/repo/target/debug/deps/m2ai_core-2c7b51fcb03399af: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/dataset.rs:
crates/core/src/frames.rs:
crates/core/src/network.rs:
crates/core/src/online.rs:
crates/core/src/pipeline.rs:
