/root/repo/target/debug/deps/checkpointing-f9e363b2c37f4b99.d: tests/checkpointing.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpointing-f9e363b2c37f4b99.rmeta: tests/checkpointing.rs Cargo.toml

tests/checkpointing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
