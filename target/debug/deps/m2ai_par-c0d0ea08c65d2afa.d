/root/repo/target/debug/deps/m2ai_par-c0d0ea08c65d2afa.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_par-c0d0ea08c65d2afa.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
