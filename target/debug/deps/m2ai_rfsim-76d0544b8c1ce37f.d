/root/repo/target/debug/deps/m2ai_rfsim-76d0544b8c1ce37f.d: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

/root/repo/target/debug/deps/m2ai_rfsim-76d0544b8c1ce37f: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

crates/rfsim/src/lib.rs:
crates/rfsim/src/channel.rs:
crates/rfsim/src/geometry.rs:
crates/rfsim/src/paths.rs:
crates/rfsim/src/reader.rs:
crates/rfsim/src/reading.rs:
crates/rfsim/src/response.rs:
crates/rfsim/src/room.rs:
crates/rfsim/src/scene.rs:
