/root/repo/target/debug/deps/m2ai_bench-b6689ab4a5b7abc6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm2ai_bench-b6689ab4a5b7abc6.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm2ai_bench-b6689ab4a5b7abc6.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
