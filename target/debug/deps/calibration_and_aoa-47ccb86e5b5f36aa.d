/root/repo/target/debug/deps/calibration_and_aoa-47ccb86e5b5f36aa.d: tests/calibration_and_aoa.rs Cargo.toml

/root/repo/target/debug/deps/libcalibration_and_aoa-47ccb86e5b5f36aa.rmeta: tests/calibration_and_aoa.rs Cargo.toml

tests/calibration_and_aoa.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
