/root/repo/target/debug/deps/m2ai_bench-cea54715fd827321.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_bench-cea54715fd827321.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
