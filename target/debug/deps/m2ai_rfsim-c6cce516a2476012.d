/root/repo/target/debug/deps/m2ai_rfsim-c6cce516a2476012.d: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_rfsim-c6cce516a2476012.rmeta: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs Cargo.toml

crates/rfsim/src/lib.rs:
crates/rfsim/src/channel.rs:
crates/rfsim/src/geometry.rs:
crates/rfsim/src/paths.rs:
crates/rfsim/src/reader.rs:
crates/rfsim/src/reading.rs:
crates/rfsim/src/response.rs:
crates/rfsim/src/room.rs:
crates/rfsim/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
