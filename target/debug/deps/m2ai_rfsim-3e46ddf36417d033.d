/root/repo/target/debug/deps/m2ai_rfsim-3e46ddf36417d033.d: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

/root/repo/target/debug/deps/libm2ai_rfsim-3e46ddf36417d033.rlib: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

/root/repo/target/debug/deps/libm2ai_rfsim-3e46ddf36417d033.rmeta: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

crates/rfsim/src/lib.rs:
crates/rfsim/src/channel.rs:
crates/rfsim/src/geometry.rs:
crates/rfsim/src/paths.rs:
crates/rfsim/src/reader.rs:
crates/rfsim/src/reading.rs:
crates/rfsim/src/response.rs:
crates/rfsim/src/room.rs:
crates/rfsim/src/scene.rs:
