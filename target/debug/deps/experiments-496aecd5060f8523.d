/root/repo/target/debug/deps/experiments-496aecd5060f8523.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-496aecd5060f8523: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
