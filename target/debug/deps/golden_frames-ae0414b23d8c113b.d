/root/repo/target/debug/deps/golden_frames-ae0414b23d8c113b.d: tests/golden_frames.rs

/root/repo/target/debug/deps/golden_frames-ae0414b23d8c113b: tests/golden_frames.rs

tests/golden_frames.rs:
