/root/repo/target/debug/deps/m2ai_nn-82e95347d31504e8.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_nn-82e95347d31504e8.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
