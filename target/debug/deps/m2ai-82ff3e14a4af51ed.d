/root/repo/target/debug/deps/m2ai-82ff3e14a4af51ed.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai-82ff3e14a4af51ed.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
