/root/repo/target/debug/deps/calibration_and_aoa-4cee9d35763d8189.d: tests/calibration_and_aoa.rs

/root/repo/target/debug/deps/calibration_and_aoa-4cee9d35763d8189: tests/calibration_and_aoa.rs

tests/calibration_and_aoa.rs:
