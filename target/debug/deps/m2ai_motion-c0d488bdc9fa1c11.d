/root/repo/target/debug/deps/m2ai_motion-c0d488bdc9fa1c11.d: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_motion-c0d488bdc9fa1c11.rmeta: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs Cargo.toml

crates/motion/src/lib.rs:
crates/motion/src/activity.rs:
crates/motion/src/gesture.rs:
crates/motion/src/scene.rs:
crates/motion/src/trajectory.rs:
crates/motion/src/volunteer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
