/root/repo/target/debug/deps/experiments-478596db97bce8fe.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-478596db97bce8fe: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
