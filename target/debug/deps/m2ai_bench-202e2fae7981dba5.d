/root/repo/target/debug/deps/m2ai_bench-202e2fae7981dba5.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm2ai_bench-202e2fae7981dba5.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libm2ai_bench-202e2fae7981dba5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
