/root/repo/target/debug/deps/m2ai_par-d02696ff8e319e51.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/libm2ai_par-d02696ff8e319e51.rlib: crates/par/src/lib.rs

/root/repo/target/debug/deps/libm2ai_par-d02696ff8e319e51.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
