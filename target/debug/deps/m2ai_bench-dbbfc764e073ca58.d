/root/repo/target/debug/deps/m2ai_bench-dbbfc764e073ca58.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/m2ai_bench-dbbfc764e073ca58: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
