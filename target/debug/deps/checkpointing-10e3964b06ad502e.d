/root/repo/target/debug/deps/checkpointing-10e3964b06ad502e.d: tests/checkpointing.rs

/root/repo/target/debug/deps/checkpointing-10e3964b06ad502e: tests/checkpointing.rs

tests/checkpointing.rs:
