/root/repo/target/debug/deps/figures-20ebb098473604f8.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-20ebb098473604f8: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
