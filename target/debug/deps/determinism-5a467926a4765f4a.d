/root/repo/target/debug/deps/determinism-5a467926a4765f4a.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-5a467926a4765f4a: tests/determinism.rs

tests/determinism.rs:
