/root/repo/target/debug/deps/m2ai_baselines-6eefa32f1a4600f0.d: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_baselines-6eefa32f1a4600f0.rmeta: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/boost.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/hmm.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/nb.rs:
crates/baselines/src/qda.rs:
crates/baselines/src/svm.rs:
crates/baselines/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
