/root/repo/target/debug/deps/m2ai_motion-bb124276c6d18558.d: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/debug/deps/libm2ai_motion-bb124276c6d18558.rlib: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/debug/deps/libm2ai_motion-bb124276c6d18558.rmeta: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

crates/motion/src/lib.rs:
crates/motion/src/activity.rs:
crates/motion/src/gesture.rs:
crates/motion/src/scene.rs:
crates/motion/src/trajectory.rs:
crates/motion/src/volunteer.rs:
