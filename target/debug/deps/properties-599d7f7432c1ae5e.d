/root/repo/target/debug/deps/properties-599d7f7432c1ae5e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-599d7f7432c1ae5e: tests/properties.rs

tests/properties.rs:
