/root/repo/target/debug/deps/m2ai_motion-82defc94d9287d04.d: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/debug/deps/m2ai_motion-82defc94d9287d04: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

crates/motion/src/lib.rs:
crates/motion/src/activity.rs:
crates/motion/src/gesture.rs:
crates/motion/src/scene.rs:
crates/motion/src/trajectory.rs:
crates/motion/src/volunteer.rs:
