/root/repo/target/debug/deps/m2ai-76b45879a7777ec0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai-76b45879a7777ec0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
