/root/repo/target/debug/deps/m2ai_dsp-8e64495c003078a9.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libm2ai_dsp-8e64495c003078a9.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs Cargo.toml

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/eigen.rs:
crates/dsp/src/esprit.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/matrix.rs:
crates/dsp/src/music.rs:
crates/dsp/src/periodogram.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
