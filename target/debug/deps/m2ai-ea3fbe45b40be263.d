/root/repo/target/debug/deps/m2ai-ea3fbe45b40be263.d: src/lib.rs

/root/repo/target/debug/deps/libm2ai-ea3fbe45b40be263.rlib: src/lib.rs

/root/repo/target/debug/deps/libm2ai-ea3fbe45b40be263.rmeta: src/lib.rs

src/lib.rs:
