/root/repo/target/debug/deps/m2ai_nn-3730183d36f3854f.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/m2ai_nn-3730183d36f3854f: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/train.rs:
