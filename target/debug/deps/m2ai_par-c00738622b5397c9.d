/root/repo/target/debug/deps/m2ai_par-c00738622b5397c9.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/m2ai_par-c00738622b5397c9: crates/par/src/lib.rs

crates/par/src/lib.rs:
