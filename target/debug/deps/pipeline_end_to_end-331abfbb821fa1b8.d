/root/repo/target/debug/deps/pipeline_end_to_end-331abfbb821fa1b8.d: tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-331abfbb821fa1b8: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
