/root/repo/target/debug/deps/m2ai-113ca33c403907d1.d: src/lib.rs

/root/repo/target/debug/deps/m2ai-113ca33c403907d1: src/lib.rs

src/lib.rs:
