/root/repo/target/debug/deps/m2ai-caa284cc3edfe9a7.d: src/lib.rs

/root/repo/target/debug/deps/libm2ai-caa284cc3edfe9a7.rlib: src/lib.rs

/root/repo/target/debug/deps/libm2ai-caa284cc3edfe9a7.rmeta: src/lib.rs

src/lib.rs:
