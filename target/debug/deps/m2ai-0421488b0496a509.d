/root/repo/target/debug/deps/m2ai-0421488b0496a509.d: src/lib.rs

/root/repo/target/debug/deps/m2ai-0421488b0496a509: src/lib.rs

src/lib.rs:
