/root/repo/target/release/deps/calibration_and_aoa-f64aa5412e512b44.d: tests/calibration_and_aoa.rs

/root/repo/target/release/deps/calibration_and_aoa-f64aa5412e512b44: tests/calibration_and_aoa.rs

tests/calibration_and_aoa.rs:
