/root/repo/target/release/deps/m2ai_par-237096438b884968.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libm2ai_par-237096438b884968.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libm2ai_par-237096438b884968.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
