/root/repo/target/release/deps/m2ai_motion-f3ac491cab4b723a.d: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/release/deps/m2ai_motion-f3ac491cab4b723a: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

crates/motion/src/lib.rs:
crates/motion/src/activity.rs:
crates/motion/src/gesture.rs:
crates/motion/src/scene.rs:
crates/motion/src/trajectory.rs:
crates/motion/src/volunteer.rs:
