/root/repo/target/release/deps/m2ai_baselines-15f22762fe086563.d: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/libm2ai_baselines-15f22762fe086563.rlib: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/libm2ai_baselines-15f22762fe086563.rmeta: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/boost.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/hmm.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/nb.rs:
crates/baselines/src/qda.rs:
crates/baselines/src/svm.rs:
crates/baselines/src/tree.rs:
