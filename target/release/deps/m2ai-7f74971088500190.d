/root/repo/target/release/deps/m2ai-7f74971088500190.d: src/lib.rs

/root/repo/target/release/deps/m2ai-7f74971088500190: src/lib.rs

src/lib.rs:
