/root/repo/target/release/deps/m2ai_baselines-e2556ab7d90959d7.d: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs

/root/repo/target/release/deps/m2ai_baselines-e2556ab7d90959d7: crates/baselines/src/lib.rs crates/baselines/src/boost.rs crates/baselines/src/gp.rs crates/baselines/src/hmm.rs crates/baselines/src/knn.rs crates/baselines/src/linalg.rs crates/baselines/src/nb.rs crates/baselines/src/qda.rs crates/baselines/src/svm.rs crates/baselines/src/tree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/boost.rs:
crates/baselines/src/gp.rs:
crates/baselines/src/hmm.rs:
crates/baselines/src/knn.rs:
crates/baselines/src/linalg.rs:
crates/baselines/src/nb.rs:
crates/baselines/src/qda.rs:
crates/baselines/src/svm.rs:
crates/baselines/src/tree.rs:
