/root/repo/target/release/deps/micro-426bd4f21707f58e.d: crates/bench/benches/micro.rs

/root/repo/target/release/deps/micro-426bd4f21707f58e: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
