/root/repo/target/release/deps/m2ai-c4540891eb8efa49.d: src/lib.rs

/root/repo/target/release/deps/libm2ai-c4540891eb8efa49.rlib: src/lib.rs

/root/repo/target/release/deps/libm2ai-c4540891eb8efa49.rmeta: src/lib.rs

src/lib.rs:
