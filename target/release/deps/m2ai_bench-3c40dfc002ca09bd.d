/root/repo/target/release/deps/m2ai_bench-3c40dfc002ca09bd.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libm2ai_bench-3c40dfc002ca09bd.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libm2ai_bench-3c40dfc002ca09bd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
