/root/repo/target/release/deps/pipeline_end_to_end-c6cdf74d87b40c4c.d: tests/pipeline_end_to_end.rs

/root/repo/target/release/deps/pipeline_end_to_end-c6cdf74d87b40c4c: tests/pipeline_end_to_end.rs

tests/pipeline_end_to_end.rs:
