/root/repo/target/release/deps/m2ai_motion-39348ea377e384a1.d: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/release/deps/libm2ai_motion-39348ea377e384a1.rlib: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

/root/repo/target/release/deps/libm2ai_motion-39348ea377e384a1.rmeta: crates/motion/src/lib.rs crates/motion/src/activity.rs crates/motion/src/gesture.rs crates/motion/src/scene.rs crates/motion/src/trajectory.rs crates/motion/src/volunteer.rs

crates/motion/src/lib.rs:
crates/motion/src/activity.rs:
crates/motion/src/gesture.rs:
crates/motion/src/scene.rs:
crates/motion/src/trajectory.rs:
crates/motion/src/volunteer.rs:
