/root/repo/target/release/deps/m2ai-f2e64020cbd88229.d: src/lib.rs

/root/repo/target/release/deps/libm2ai-f2e64020cbd88229.rlib: src/lib.rs

/root/repo/target/release/deps/libm2ai-f2e64020cbd88229.rmeta: src/lib.rs

src/lib.rs:
