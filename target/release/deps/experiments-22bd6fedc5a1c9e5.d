/root/repo/target/release/deps/experiments-22bd6fedc5a1c9e5.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-22bd6fedc5a1c9e5: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
