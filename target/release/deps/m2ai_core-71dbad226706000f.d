/root/repo/target/release/deps/m2ai_core-71dbad226706000f.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/m2ai_core-71dbad226706000f: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/dataset.rs:
crates/core/src/frames.rs:
crates/core/src/network.rs:
crates/core/src/online.rs:
crates/core/src/pipeline.rs:
