/root/repo/target/release/deps/m2ai_bench-f0c90f7f1c095959.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libm2ai_bench-f0c90f7f1c095959.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libm2ai_bench-f0c90f7f1c095959.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
