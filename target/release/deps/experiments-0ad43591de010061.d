/root/repo/target/release/deps/experiments-0ad43591de010061.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-0ad43591de010061: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
