/root/repo/target/release/deps/checkpointing-66e13172e8b63dfa.d: tests/checkpointing.rs

/root/repo/target/release/deps/checkpointing-66e13172e8b63dfa: tests/checkpointing.rs

tests/checkpointing.rs:
