/root/repo/target/release/deps/m2ai_dsp-15658ed57ad363e6.d: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libm2ai_dsp-15658ed57ad363e6.rlib: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

/root/repo/target/release/deps/libm2ai_dsp-15658ed57ad363e6.rmeta: crates/dsp/src/lib.rs crates/dsp/src/complex.rs crates/dsp/src/eigen.rs crates/dsp/src/esprit.rs crates/dsp/src/fft.rs crates/dsp/src/filter.rs crates/dsp/src/matrix.rs crates/dsp/src/music.rs crates/dsp/src/periodogram.rs crates/dsp/src/phase.rs crates/dsp/src/stats.rs crates/dsp/src/window.rs

crates/dsp/src/lib.rs:
crates/dsp/src/complex.rs:
crates/dsp/src/eigen.rs:
crates/dsp/src/esprit.rs:
crates/dsp/src/fft.rs:
crates/dsp/src/filter.rs:
crates/dsp/src/matrix.rs:
crates/dsp/src/music.rs:
crates/dsp/src/periodogram.rs:
crates/dsp/src/phase.rs:
crates/dsp/src/stats.rs:
crates/dsp/src/window.rs:
