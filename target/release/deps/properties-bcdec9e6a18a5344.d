/root/repo/target/release/deps/properties-bcdec9e6a18a5344.d: tests/properties.rs

/root/repo/target/release/deps/properties-bcdec9e6a18a5344: tests/properties.rs

tests/properties.rs:
