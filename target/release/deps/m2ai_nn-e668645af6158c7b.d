/root/repo/target/release/deps/m2ai_nn-e668645af6158c7b.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libm2ai_nn-e668645af6158c7b.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libm2ai_nn-e668645af6158c7b.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/loss.rs crates/nn/src/lstm.rs crates/nn/src/metrics.rs crates/nn/src/model.rs crates/nn/src/optim.rs crates/nn/src/serialize.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/loss.rs:
crates/nn/src/lstm.rs:
crates/nn/src/metrics.rs:
crates/nn/src/model.rs:
crates/nn/src/optim.rs:
crates/nn/src/serialize.rs:
crates/nn/src/train.rs:
