/root/repo/target/release/deps/m2ai_bench-643b080bb1d320b3.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/m2ai_bench-643b080bb1d320b3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
