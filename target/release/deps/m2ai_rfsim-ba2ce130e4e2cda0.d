/root/repo/target/release/deps/m2ai_rfsim-ba2ce130e4e2cda0.d: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

/root/repo/target/release/deps/libm2ai_rfsim-ba2ce130e4e2cda0.rlib: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

/root/repo/target/release/deps/libm2ai_rfsim-ba2ce130e4e2cda0.rmeta: crates/rfsim/src/lib.rs crates/rfsim/src/channel.rs crates/rfsim/src/geometry.rs crates/rfsim/src/paths.rs crates/rfsim/src/reader.rs crates/rfsim/src/reading.rs crates/rfsim/src/response.rs crates/rfsim/src/room.rs crates/rfsim/src/scene.rs

crates/rfsim/src/lib.rs:
crates/rfsim/src/channel.rs:
crates/rfsim/src/geometry.rs:
crates/rfsim/src/paths.rs:
crates/rfsim/src/reader.rs:
crates/rfsim/src/reading.rs:
crates/rfsim/src/response.rs:
crates/rfsim/src/room.rs:
crates/rfsim/src/scene.rs:
