/root/repo/target/release/deps/m2ai_core-78642bf64ea43072.d: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libm2ai_core-78642bf64ea43072.rlib: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

/root/repo/target/release/deps/libm2ai_core-78642bf64ea43072.rmeta: crates/core/src/lib.rs crates/core/src/calibration.rs crates/core/src/dataset.rs crates/core/src/frames.rs crates/core/src/network.rs crates/core/src/online.rs crates/core/src/pipeline.rs

crates/core/src/lib.rs:
crates/core/src/calibration.rs:
crates/core/src/dataset.rs:
crates/core/src/frames.rs:
crates/core/src/network.rs:
crates/core/src/online.rs:
crates/core/src/pipeline.rs:
