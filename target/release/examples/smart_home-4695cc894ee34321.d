/root/repo/target/release/examples/smart_home-4695cc894ee34321.d: examples/smart_home.rs

/root/repo/target/release/examples/smart_home-4695cc894ee34321: examples/smart_home.rs

examples/smart_home.rs:
