/root/repo/target/release/examples/quickstart-c4d6dc016e878c59.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c4d6dc016e878c59: examples/quickstart.rs

examples/quickstart.rs:
