/root/repo/target/release/examples/warehouse_coverage-2a261f0a7a43833b.d: examples/warehouse_coverage.rs

/root/repo/target/release/examples/warehouse_coverage-2a261f0a7a43833b: examples/warehouse_coverage.rs

examples/warehouse_coverage.rs:
