/root/repo/target/release/examples/reader_stream-55cd8db2f7f5cad0.d: examples/reader_stream.rs

/root/repo/target/release/examples/reader_stream-55cd8db2f7f5cad0: examples/reader_stream.rs

examples/reader_stream.rs:
