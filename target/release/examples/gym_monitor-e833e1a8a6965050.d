/root/repo/target/release/examples/gym_monitor-e833e1a8a6965050.d: examples/gym_monitor.rs

/root/repo/target/release/examples/gym_monitor-e833e1a8a6965050: examples/gym_monitor.rs

examples/gym_monitor.rs:
