/root/repo/target/release/examples/smart_home-af06b0e49aa1dd5f.d: examples/smart_home.rs

/root/repo/target/release/examples/smart_home-af06b0e49aa1dd5f: examples/smart_home.rs

examples/smart_home.rs:
