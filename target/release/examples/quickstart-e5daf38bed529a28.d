/root/repo/target/release/examples/quickstart-e5daf38bed529a28.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-e5daf38bed529a28: examples/quickstart.rs

examples/quickstart.rs:
