//! Offline, dependency-free stand-in for the subset of the `proptest`
//! 1.x API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface
//! syntax: the [`proptest!`] macro, range/tuple/`vec`/[`any`]
//! strategies, [`ProptestConfig`] and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its inputs verbatim;
//! * **deterministic seeding** — each test's stream is derived from the
//!   test's name, so failures always reproduce exactly;
//! * strategies are plain value generators (no `ValueTree`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Harness configuration (`cases` is the only honoured field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Marks the case as rejected (`prop_assume!`); treated as a skip.
    pub fn reject() -> Self {
        TestCaseError("<rejected>".to_string())
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_rejection(&self) -> bool {
        self.0 == "<rejected>"
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving the strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty index range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng.next_u64() as u128) % width) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical whole-domain strategy (used by [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spread over a wide but usable range.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

/// Strategy over a type's whole domain: `any::<T>()`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.index(self.size.lo, self.size.hi_inclusive + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Declares property tests; syntax-compatible with upstream `proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(e) if e.is_rejection() => {}
                        ::std::result::Result::Err(e) => panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_and_any(pair in (0u16..5, 0u16..5), flag in any::<bool>()) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("abc");
        let mut b = crate::TestRng::deterministic("abc");
        let mut c = crate::TestRng::deterministic("abd");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
