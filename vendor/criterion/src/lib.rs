//! Offline, dependency-free stand-in for the subset of the `criterion`
//! 0.5 API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small wall-clock benchmarking harness with the same
//! surface: [`Criterion`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Statistics are deliberately simple: each benchmark is warmed up,
//! then timed over enough iterations to fill a fixed measurement
//! window, and the mean/min/max per-iteration times are printed. No
//! HTML reports, no outlier analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier; re-export of [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortises setup cost (ignored here —
/// setup is always per-batch and never timed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// Fresh input per iteration.
    PerIteration,
}

/// Formats a per-iteration duration with an adaptive unit.
fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Runs timed closures for one benchmark.
pub struct Bencher {
    measurement_window: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(measurement_window: Duration) -> Self {
        Bencher {
            measurement_window,
            samples: Vec::new(),
        }
    }

    /// Times `routine` repeatedly until the measurement window fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up call.
        black_box(routine());
        let deadline = Instant::now() + self.measurement_window;
        loop {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.samples.push(elapsed);
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + self.measurement_window;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.samples.push(elapsed);
            if Instant::now() >= deadline || self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("non-empty");
        let max = *self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<48} time: [{} {} {}]  ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            self.samples.len()
        );
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    filter: Option<String>,
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            measurement_window: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`cargo bench -- <filter>`).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        self.filter = args
            .into_iter()
            .find(|a| !a.starts_with('-') && a != "bench");
        self
    }

    fn enabled(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f.as_str()))
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let window = self.measurement_window;
        if self.enabled(&id) {
            run_one(&id, window, routine);
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, window: Duration, mut routine: F) {
    let mut b = Bencher::new(window);
    routine(&mut b);
    b.report(id);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the sample count; this harness uses a fixed
    /// measurement window, so the call is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let window = self.parent.measurement_window;
        if self.parent.enabled(&full) {
            run_one(&full, window, routine);
        }
        self
    }

    /// Closes the group (prints nothing extra).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, as upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            measurement_window: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion {
            filter: None,
            measurement_window: Duration::from_millis(5),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            measurement_window: Duration::from_millis(5),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran, "filtered benchmark must not run");
    }
}
