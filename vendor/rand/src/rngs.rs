//! Named generator types ([`StdRng`]).

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not stream-compatible with upstream `rand`'s ChaCha12-based
/// `StdRng`; see the crate docs for why that is acceptable here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn from_state(mut seed_state: u64) -> Self {
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut seed_state);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // Compress the 32-byte seed into a u64 with FNV-1a, then expand
        // — simple, deterministic and well-mixed.
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in seed {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::from_state(h)
    }

    fn seed_from_u64(state: u64) -> Self {
        StdRng::from_state(state)
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
