//! Offline, dependency-free stand-in for the subset of the `rand` 0.8
//! API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation of the interfaces it needs:
//! [`rngs::StdRng`], [`SeedableRng`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`Rng::gen`] and [`seq::SliceRandom`].
//!
//! **Stream compatibility:** the generator here is xoshiro256++ seeded
//! through SplitMix64, *not* the ChaCha12 stream upstream `rand` uses
//! for `StdRng`. Values drawn for a given seed therefore differ from
//! upstream. Every consumer in this repository treats the RNG as an
//! opaque deterministic stream, so only reproducibility matters — and
//! that is guaranteed: the same seed always yields the same sequence,
//! on every platform, forever (this crate is frozen alongside the
//! golden tests in `tests/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of `u32`/`u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be created from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significand bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types [`Rng::gen_range`] can sample uniformly from a range of.
///
/// The blanket [`SampleRange`] impls below go through this trait, so
/// type inference resolves the element type the same way upstream
/// `rand` does (one applicable impl per range shape).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let width = if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128 + 1
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    (hi as i128 - lo as i128) as u128
                };
                let draw = (rng.next_u64() as u128) % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(lo, hi, true, rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly-distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v));
            let w: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
            let f: f32 = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn int_ranges_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn float_unit_interval_statistics() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        let mut w: Vec<usize> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(3);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle should move things");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn from_seed_roundtrip() {
        let seed = [7u8; 32];
        let mut a = StdRng::from_seed(seed);
        let mut b = StdRng::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
